//! Node-level discrete-event replay of rank traces against shared GPUs.
//!
//! Fig. 4 of the paper varies the number of processes on one node while
//! holding total resources fixed; its shape (oversubscription pays until
//! ~2 processes per GPU, then per-process overheads win) is an interaction
//! between per-rank timelines and shared devices. This module reproduces
//! that interaction with a fluid discrete-event simulation:
//!
//! * **Host segments** of different ranks run concurrently (cores are
//!   partitioned among ranks; segments were sized for their thread count).
//! * **Kernels** on a GPU with **MPS** share it as a processor-sharing
//!   fluid: kernel *i* with solo utilisation `u_i` receives rate
//!   `u_i · min(1, 1/Σu)` — an under-filled device runs concurrent kernels
//!   at full speed (the oversubscription benefit), a saturated one
//!   time-shares.
//! * **Without MPS** the driver time-slices whole CUDA contexts with
//!   coarse quanta: a rank receives `1/k` of its GPU whether or not its
//!   co-tenants are computing, plus a context-switch charge — the paper's
//!   § 3.1.2 observation that non-MPS throughput caps near one process
//!   per device.
//! * **PCIe** is a per-GPU link shared equally by active transfers.

use crate::calib::NodeCalib;
use crate::trace::{RankTrace, Segment};

/// Node configuration for a replay.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    pub calib: NodeCalib,
    /// Number of GPUs on the node (Perlmutter: 4).
    pub gpus: u32,
    /// Whether the CUDA Multi-Process Service is active.
    pub mps: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            calib: NodeCalib::default(),
            gpus: 4,
            mps: true,
        }
    }
}

/// Result of a node replay.
#[derive(Debug, Clone)]
pub struct NodeResult {
    /// Wall-clock seconds until the last rank finished.
    pub wall_seconds: f64,
    /// Per-rank completion times.
    pub rank_seconds: Vec<f64>,
    /// Per-GPU busy seconds (device actually computing).
    pub gpu_busy: Vec<f64>,
    /// Per-GPU seconds lost to context switches (zero under MPS).
    pub switch_seconds: Vec<f64>,
}

/// Kind of a wall-clock [`TimelineEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimelineKind {
    /// Host-side computation (including kernel dispatch lead-ins).
    Host,
    /// Device kernel execution.
    Kernel,
    /// PCIe transfer.
    Transfer,
    /// A context swap charged to a non-MPS kernel (instant marker at the
    /// kernel's scheduling time; its cost is folded into the kernel).
    ContextSwitch,
}

impl TimelineKind {
    /// Stable lowercase name, used by the trace exporters.
    pub fn name(self) -> &'static str {
        match self {
            TimelineKind::Host => "host",
            TimelineKind::Kernel => "kernel",
            TimelineKind::Transfer => "transfer",
            TimelineKind::ContextSwitch => "context_switch",
        }
    }
}

/// One contention-resolved interval of a rank's replay: when the activity
/// actually ran on the shared node, in wall-clock seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Which rank.
    pub rank: usize,
    /// GPU involved (kernels, transfers, switches); `None` for host work.
    pub gpu: Option<usize>,
    /// Accounting label of the underlying segment.
    pub label: String,
    /// What ran.
    pub kind: TimelineKind,
    /// Wall-clock start.
    pub start: f64,
    /// Wall-clock end (≥ start; equal for instants).
    pub end: f64,
}

/// One occupancy sample: GPU `gpu` ran at `load` (0..=1 of its compute
/// throughput) over the interval starting at `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSample {
    /// Interval start, wall-clock seconds.
    pub t: f64,
    /// GPU index.
    pub gpu: usize,
    /// Fraction of the device's throughput in use (clamped to 1).
    pub load: f64,
}

/// The wall-clock timeline of a replay: what each rank ran when after
/// contention, plus piecewise-constant per-GPU occupancy.
#[derive(Debug, Clone, Default)]
pub struct NodeTimeline {
    /// Per-rank intervals, in completion order.
    pub events: Vec<TimelineEvent>,
    /// Per-GPU occupancy samples, one per replay step per GPU (each valid
    /// until the next sample for the same GPU).
    pub occupancy: Vec<GpuSample>,
}

impl NodeTimeline {
    /// Time-weighted mean occupancy of `gpu` over `horizon` seconds.
    pub fn mean_occupancy(&self, gpu: usize, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        let samples: Vec<&GpuSample> = self.occupancy.iter().filter(|s| s.gpu == gpu).collect();
        let mut acc = 0.0;
        for (i, s) in samples.iter().enumerate() {
            let end = samples.get(i + 1).map_or(horizon, |n| n.t);
            acc += s.load * (end - s.t).max(0.0);
        }
        acc / horizon
    }
}

/// A rank's trace does not fit in its share of device memory.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOom {
    /// GPU index that overflowed.
    pub gpu: u32,
    /// Total peak bytes demanded by the ranks sharing it.
    pub demanded: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for NodeOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GPU {} out of memory: ranks demand {} B of {} B",
            self.gpu, self.demanded, self.capacity
        )
    }
}

impl std::error::Error for NodeOom {}

/// What a rank is currently doing in the replay.
#[derive(Debug, Clone)]
enum Activity {
    /// Running host code; `remaining` host-seconds left.
    Host { remaining: f64 },
    /// Kernel on `gpu`: `remaining` device-seconds of demand at max rate
    /// `util`.
    Kernel {
        gpu: usize,
        remaining: f64,
        util: f64,
    },
    /// Transfer on `gpu`'s PCIe link; `remaining` link-seconds.
    Transfer { gpu: usize, remaining: f64 },
    /// All segments consumed.
    Done,
}

struct RankState<'a> {
    segments: &'a [Segment],
    next: usize,
    activity: Activity,
    finish: f64,
    /// Device part of a kernel whose host lead-in (dispatch + launch
    /// latency) is currently running: `(device_seconds, utilization,
    /// kernel name)`.
    pending_kernel: Option<(f64, f64, String)>,
    /// Label of the current activity (for the timeline).
    cur_label: String,
    /// Wall-clock start of the current activity.
    cur_start: f64,
}

/// Replay `traces` (one per rank) on a node. Rank `r` uses GPU
/// `r % gpus`. Returns the emergent wall time or an OOM if the combined
/// peak footprints of the ranks sharing a GPU exceed its memory.
pub fn simulate_node(traces: &[RankTrace], cfg: &NodeConfig) -> Result<NodeResult, NodeOom> {
    replay(traces, cfg, false).map(|(res, _)| res)
}

/// [`simulate_node`], additionally recording the contention-resolved
/// wall-clock timeline of every rank and per-GPU occupancy samples.
pub fn simulate_node_traced(
    traces: &[RankTrace],
    cfg: &NodeConfig,
) -> Result<(NodeResult, NodeTimeline), NodeOom> {
    replay(traces, cfg, true)
}

fn replay(
    traces: &[RankTrace],
    cfg: &NodeConfig,
    record: bool,
) -> Result<(NodeResult, NodeTimeline), NodeOom> {
    let gpus = cfg.gpus.max(1) as usize;

    // Memory feasibility: peak footprints of co-located ranks must fit.
    for g in 0..gpus {
        let demanded: u64 = traces
            .iter()
            .enumerate()
            .filter(|(r, _)| r % gpus == g)
            .map(|(_, t)| t.peak_device_bytes)
            .sum();
        if demanded > cfg.calib.gpu.mem_bytes {
            return Err(NodeOom {
                gpu: g as u32,
                demanded,
                capacity: cfg.calib.gpu.mem_bytes,
            });
        }
    }

    let mut ranks: Vec<RankState> = traces
        .iter()
        .map(|t| RankState {
            segments: &t.segments,
            next: 0,
            activity: Activity::Done,
            finish: 0.0,
            pending_kernel: None,
            cur_label: String::new(),
            cur_start: 0.0,
        })
        .collect();
    let mut timeline = NodeTimeline::default();

    let mut ranks_per_gpu = vec![0u32; gpus];
    for r in 0..traces.len() {
        ranks_per_gpu[r % gpus] += 1;
    }
    let mut gpu_busy = vec![0.0f64; gpus];
    let mut switch_seconds = vec![0.0f64; gpus];

    // Without MPS every kernel dispatch swaps the process's context onto
    // the device first; the swap is charged as extra demand per kernel.
    let switch_demand = |gpu: usize| -> f64 {
        if !cfg.mps && ranks_per_gpu[gpu] > 1 {
            cfg.calib.gpu.context_switch
        } else {
            0.0
        }
    };

    // Prime every rank's first activity.
    for r in 0..ranks.len() {
        advance_segment(&mut ranks, r, cfg, gpus);
        if let Activity::Kernel { gpu, remaining, .. } = &mut ranks[r].activity {
            let gpu = *gpu;
            let extra = switch_demand(gpu);
            *remaining += extra;
            switch_seconds[gpu] += extra;
            if record && extra > 0.0 {
                timeline.events.push(TimelineEvent {
                    rank: r,
                    gpu: Some(gpu),
                    label: "context_switch".into(),
                    kind: TimelineKind::ContextSwitch,
                    start: 0.0,
                    end: 0.0,
                });
            }
        }
    }

    let mut now = 0.0f64;
    let mut guard = 0usize;
    let guard_limit = 10 * traces.iter().map(|t| t.segments.len() + 2).sum::<usize>() + 1000;

    loop {
        guard += 1;
        assert!(guard < guard_limit, "replay failed to converge");

        // Compute the current rate of every rank's activity.
        let mut gpu_load = vec![0.0f64; gpus]; // Σ u over active kernels (MPS)
        let mut link_users = vec![0u32; gpus];
        for s in &ranks {
            match &s.activity {
                Activity::Kernel { gpu, util, .. } => gpu_load[*gpu] += *util,
                Activity::Transfer { gpu, .. } => link_users[*gpu] += 1,
                _ => {}
            }
        }

        let rate_of = |_r: usize, s: &RankState| -> f64 {
            match &s.activity {
                Activity::Host { .. } => 1.0,
                Activity::Kernel { gpu, util, .. } => {
                    if cfg.mps {
                        // Processor sharing: full rate while the device has
                        // headroom, proportional slowdown once saturated —
                        // degraded by the MPS crowding penalty as more
                        // clients share the device.
                        let k = ranks_per_gpu[*gpu].max(1) as f64;
                        let crowd = 1.0 + cfg.calib.gpu.mps_crowding * (k - 1.0);
                        util * (1.0 / gpu_load[*gpu]).min(1.0) / crowd
                    } else {
                        // No MPS: the driver time-slices whole CUDA
                        // contexts with coarse quanta, so a process gets
                        // 1/k of its device whether or not its co-tenants
                        // are computing — "effectively capping our
                        // performance to one process per device"
                        // (paper 3.1.2). Ownership bookkeeping below only
                        // prices the switches.
                        util / ranks_per_gpu[*gpu].max(1) as f64
                    }
                }
                Activity::Transfer { gpu, .. } => 1.0 / link_users[*gpu].max(1) as f64,
                Activity::Done => 0.0,
            }
        };

        // Time to the next completion.
        let mut dt = f64::INFINITY;
        for (r, s) in ranks.iter().enumerate() {
            let rate = rate_of(r, s);
            let remaining = match &s.activity {
                Activity::Host { remaining }
                | Activity::Kernel { remaining, .. }
                | Activity::Transfer { remaining, .. } => *remaining,
                Activity::Done => continue,
            };
            if rate > 0.0 {
                dt = dt.min(remaining / rate);
            }
        }
        if !dt.is_finite() {
            break; // everything Done (or deadlocked, which the guard catches)
        }
        let dt = dt.max(0.0);

        // Advance all activities by dt and collect completions.
        let rates: Vec<f64> = ranks
            .iter()
            .enumerate()
            .map(|(r, s)| rate_of(r, s))
            .collect();
        if record {
            for (g, load) in gpu_load.iter().take(gpus).enumerate() {
                timeline.occupancy.push(GpuSample {
                    t: now,
                    gpu: g,
                    load: load.min(1.0),
                });
            }
        }
        now += dt;
        for g in 0..gpus {
            let active = if gpu_load[g] > 0.0 {
                gpu_load[g].min(1.0)
            } else {
                0.0
            };
            gpu_busy[g] += active * dt;
        }
        for r in 0..ranks.len() {
            let served = rates[r] * dt;
            let finished = match &mut ranks[r].activity {
                Activity::Host { remaining }
                | Activity::Kernel { remaining, .. }
                | Activity::Transfer { remaining, .. } => {
                    *remaining -= served;
                    *remaining <= 1e-15
                }
                Activity::Done => false,
            };
            if finished {
                if record {
                    let (kind, gpu) = match &ranks[r].activity {
                        Activity::Host { .. } => (TimelineKind::Host, None),
                        Activity::Kernel { gpu, .. } => (TimelineKind::Kernel, Some(*gpu)),
                        Activity::Transfer { gpu, .. } => (TimelineKind::Transfer, Some(*gpu)),
                        Activity::Done => unreachable!("finished implies an activity"),
                    };
                    timeline.events.push(TimelineEvent {
                        rank: r,
                        gpu,
                        label: ranks[r].cur_label.clone(),
                        kind,
                        start: ranks[r].cur_start,
                        end: now,
                    });
                }
                advance_segment(&mut ranks, r, cfg, gpus);
                ranks[r].cur_start = now;
                if let Activity::Kernel { gpu, remaining, .. } = &mut ranks[r].activity {
                    let gpu = *gpu;
                    let extra = switch_demand(gpu);
                    *remaining += extra;
                    switch_seconds[gpu] += extra;
                    if record && extra > 0.0 {
                        timeline.events.push(TimelineEvent {
                            rank: r,
                            gpu: Some(gpu),
                            label: "context_switch".into(),
                            kind: TimelineKind::ContextSwitch,
                            start: now,
                            end: now,
                        });
                    }
                }
                if matches!(ranks[r].activity, Activity::Done) && ranks[r].finish == 0.0 {
                    ranks[r].finish = now;
                }
            }
        }
    }

    let rank_seconds: Vec<f64> = ranks.iter().map(|s| s.finish).collect();
    Ok((
        NodeResult {
            wall_seconds: rank_seconds.iter().cloned().fold(0.0, f64::max),
            rank_seconds,
            gpu_busy,
            switch_seconds,
        },
        timeline,
    ))
}

/// Pop the next segment of rank `r` into its activity slot. A `Kernel`
/// segment expands to a host lead-in (dispatch + launch latency) followed
/// by the device part, staged through `pending_kernel`.
fn advance_segment(ranks: &mut [RankState], r: usize, cfg: &NodeConfig, gpus: usize) {
    let gpu = r % gpus;
    let state = &mut ranks[r];
    if let Some((remaining, util, name)) = state.pending_kernel.take() {
        state.cur_label = name;
        state.activity = Activity::Kernel {
            gpu,
            remaining,
            util,
        };
        return;
    }
    state.activity = loop {
        let Some(seg) = state.segments.get(state.next) else {
            break Activity::Done;
        };
        state.next += 1;
        match seg {
            Segment::Host { seconds, label } => {
                if *seconds > 0.0 {
                    state.cur_label.clone_from(label);
                    break Activity::Host {
                        remaining: *seconds,
                    };
                }
            }
            Segment::Kernel { profile, dispatch } => {
                let lead = dispatch + cfg.calib.gpu.launch_latency;
                state.pending_kernel = Some((
                    profile.device_seconds(&cfg.calib.gpu),
                    profile.solo_utilization(&cfg.calib.gpu).max(1e-6),
                    profile.name.clone(),
                ));
                state.cur_label = format!("{}/dispatch", profile.name);
                break Activity::Host {
                    remaining: lead.max(1e-12),
                };
            }
            Segment::Transfer { bytes, label, .. } => {
                let t = cfg.calib.gpu.pcie_latency + bytes / cfg.calib.gpu.pcie_bw;
                state.cur_label.clone_from(label);
                break Activity::Transfer { gpu, remaining: t };
            }
            Segment::DeviceAlloc { seconds } => {
                if *seconds > 0.0 {
                    state.cur_label = "accel_data_alloc".into();
                    break Activity::Host {
                        remaining: *seconds,
                    };
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelProfile;
    use crate::trace::TransferDir;

    /// Config with MPS crowding disabled: these tests probe the pure
    /// fluid-sharing mechanics; crowding is exercised separately.
    fn cfg_no_crowding() -> NodeConfig {
        let mut cfg = NodeConfig::default();
        cfg.calib.gpu.mps_crowding = 0.0;
        cfg
    }

    fn trace_with(segments: Vec<Segment>, peak: u64) -> RankTrace {
        RankTrace {
            segments,
            peak_device_bytes: peak,
            ..RankTrace::default()
        }
    }

    fn host(seconds: f64) -> Segment {
        Segment::Host {
            seconds,
            label: "h".into(),
        }
    }

    #[test]
    fn single_rank_wall_time_is_sum_of_segments() {
        let cfg = NodeConfig::default();
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = trace_with(
            vec![
                host(1.0),
                Segment::Kernel {
                    profile: k,
                    dispatch: 0.0,
                },
                host(0.5),
            ],
            0,
        );
        let res = simulate_node(&[t], &cfg).unwrap();
        let expected = 1.0 + cfg.calib.gpu.launch_latency + solo + 0.5;
        assert!(
            (res.wall_seconds - expected).abs() < 1e-9,
            "{} vs {}",
            res.wall_seconds,
            expected
        );
    }

    #[test]
    fn host_segments_run_concurrently_across_ranks() {
        let cfg = NodeConfig::default();
        let traces: Vec<_> = (0..8).map(|_| trace_with(vec![host(2.0)], 0)).collect();
        let res = simulate_node(&traces, &cfg).unwrap();
        assert!((res.wall_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_kernels_time_share_under_mps() {
        // Two ranks on the same single GPU, each with a device-saturating
        // kernel: wall time is the serial sum.
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let res = simulate_node(&[t(), t()], &cfg).unwrap();
        assert!(
            (res.wall_seconds - 2.0 * solo).abs() / (2.0 * solo) < 0.01,
            "{} vs {}",
            res.wall_seconds,
            2.0 * solo
        );
    }

    #[test]
    fn underfilled_kernels_overlap_under_mps() {
        // Two ranks with kernels that each fill only 10% of the device:
        // they should run fully concurrently (wall ≈ solo, not 2×).
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        let items = cfg.calib.gpu.saturation_items * 0.1;
        let k = KernelProfile::uniform("k", items, 1e5, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let res = simulate_node(&[t(), t()], &cfg).unwrap();
        let lead = cfg.calib.gpu.launch_latency;
        assert!(
            res.wall_seconds < 1.2 * (solo + lead),
            "{} vs solo {}",
            res.wall_seconds,
            solo
        );
    }

    #[test]
    fn without_mps_kernels_serialize_with_switch_cost() {
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        cfg.mps = false;
        let items = cfg.calib.gpu.saturation_items * 0.1;
        let k = KernelProfile::uniform("k", items, 1e5, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let res = simulate_node(&[t(), t()], &cfg).unwrap();
        // Time-sliced contexts: each rank gets half its device, so the
        // wall is ~2x solo even though the kernels underfill the GPU —
        // compare with `underfilled_kernels_overlap_under_mps`.
        assert!(
            res.wall_seconds > 1.95 * solo,
            "{} vs {}",
            res.wall_seconds,
            2.0 * solo
        );
        let mps = simulate_node(&[t(), t()], &cfg_no_crowding_one_gpu_mps()).unwrap();
        assert!(res.wall_seconds > 1.5 * mps.wall_seconds);
    }

    fn cfg_no_crowding_one_gpu_mps() -> NodeConfig {
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        cfg.mps = true;
        cfg
    }

    #[test]
    fn mps_crowding_slows_shared_kernels() {
        let mut cfg = NodeConfig {
            gpus: 1,
            ..NodeConfig::default()
        };
        cfg.calib.gpu.mps_crowding = 0.5;
        let items = cfg.calib.gpu.saturation_items * 0.05;
        let k = KernelProfile::uniform("k", items, 1e5, 8.0);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let one = simulate_node(&[t()], &cfg).unwrap().wall_seconds;
        let four = simulate_node(&[t(), t(), t(), t()], &cfg)
            .unwrap()
            .wall_seconds;
        // Four clients: crowding 1 + 0.5*3 = 2.5x on otherwise-overlapping
        // kernels.
        assert!(four > 2.0 * one, "four {four} one {one}");
    }

    #[test]
    fn oversubscription_hides_host_gaps() {
        // A rank alternates host work and GPU work of equal duration. One
        // rank leaves the GPU idle half the time; two ranks on one GPU
        // interleave and finish in less than 2x a single rank's span.
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let mk = |n: usize| {
            let mut segs = Vec::new();
            for _ in 0..n {
                segs.push(host(solo));
                segs.push(Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                });
            }
            trace_with(segs, 0)
        };
        let one = simulate_node(&[mk(4)], &cfg).unwrap().wall_seconds;
        let two = simulate_node(&[mk(4), mk(4)], &cfg).unwrap().wall_seconds;
        // Perfect interleave would give two ≈ one; demand 25% saving vs 2x.
        assert!(two < 1.5 * one, "two={two} one={one}");
    }

    #[test]
    fn transfers_share_the_link() {
        let cfg = NodeConfig {
            gpus: 1,
            ..NodeConfig::default()
        };
        let bytes = 1e9;
        let t = || {
            trace_with(
                vec![Segment::Transfer {
                    bytes,
                    dir: TransferDir::HostToDevice,
                    label: "x".into(),
                }],
                0,
            )
        };
        let single = simulate_node(&[t()], &cfg).unwrap().wall_seconds;
        let double = simulate_node(&[t(), t()], &cfg).unwrap().wall_seconds;
        assert!((double / single - 2.0).abs() < 0.01, "{double} vs {single}");
    }

    #[test]
    fn oom_when_colocated_ranks_exceed_memory() {
        let cfg = NodeConfig {
            gpus: 1,
            ..NodeConfig::default()
        };
        let cap = cfg.calib.gpu.mem_bytes;
        let t = trace_with(vec![host(1.0)], cap / 2 + 1);
        let err = simulate_node(&[t.clone(), t], &cfg).unwrap_err();
        assert_eq!(err.gpu, 0);
        assert!(err.demanded > cap);
        // A single rank with the same footprint fits.
        let t = trace_with(vec![host(1.0)], cap / 2 + 1);
        assert!(simulate_node(&[t], &cfg).is_ok());
    }

    #[test]
    fn ranks_spread_across_gpus() {
        // 4 ranks, 4 GPUs, saturating kernels: fully parallel.
        let cfg = NodeConfig::default();
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let res = simulate_node(&[t(), t(), t(), t()], &cfg).unwrap();
        assert!(res.wall_seconds < 1.1 * solo);
        for g in 0..4 {
            assert!(res.gpu_busy[g] > 0.0, "gpu {g} unused");
        }
    }

    #[test]
    fn empty_traces_finish_instantly() {
        let cfg = NodeConfig::default();
        let res = simulate_node(&[RankTrace::default()], &cfg).unwrap();
        assert_eq!(res.wall_seconds, 0.0);
    }

    #[test]
    fn timeline_covers_every_segment_in_wall_clock() {
        let cfg = NodeConfig::default();
        let k = KernelProfile::uniform("my_kernel", 1e9, 100.0, 8.0);
        let t = trace_with(
            vec![
                host(1.0),
                Segment::Kernel {
                    profile: k,
                    dispatch: 1e-4,
                },
                Segment::Transfer {
                    bytes: 1e8,
                    dir: TransferDir::DeviceToHost,
                    label: "accel_data_update_host".into(),
                },
            ],
            0,
        );
        let (res, tl) = simulate_node_traced(&[t], &cfg).unwrap();

        // Host 1.0s, dispatch lead-in, kernel, transfer: 4 intervals.
        assert_eq!(tl.events.len(), 4);
        assert_eq!(tl.events[0].kind, TimelineKind::Host);
        assert_eq!(tl.events[0].label, "h");
        assert_eq!(tl.events[1].label, "my_kernel/dispatch");
        assert_eq!(tl.events[2].kind, TimelineKind::Kernel);
        assert_eq!(tl.events[2].label, "my_kernel");
        assert_eq!(tl.events[2].gpu, Some(0));
        assert_eq!(tl.events[3].kind, TimelineKind::Transfer);

        // Intervals are contiguous and end at the wall time.
        let mut t = 0.0;
        for e in &tl.events {
            assert!((e.start - t).abs() < 1e-9, "{} vs {t}", e.start);
            assert!(e.end >= e.start);
            t = e.end;
        }
        assert!((t - res.wall_seconds).abs() < 1e-9);
    }

    #[test]
    fn occupancy_tracks_busy_time() {
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let t = trace_with(
            vec![Segment::Kernel {
                profile: k,
                dispatch: 0.0,
            }],
            0,
        );
        let (res, tl) = simulate_node_traced(&[t], &cfg).unwrap();
        assert!(!tl.occupancy.is_empty());
        // Integrated occupancy equals the busy-seconds accounting.
        let mean = tl.mean_occupancy(0, res.wall_seconds);
        assert!(
            (mean * res.wall_seconds - res.gpu_busy[0]).abs() < 1e-9,
            "integrated {} vs busy {}",
            mean * res.wall_seconds,
            res.gpu_busy[0]
        );
    }

    #[test]
    fn context_switches_appear_in_the_timeline() {
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        cfg.mps = false;
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let (_, tl) = simulate_node_traced(&[t(), t()], &cfg).unwrap();
        let switches = tl
            .events
            .iter()
            .filter(|e| e.kind == TimelineKind::ContextSwitch)
            .count();
        assert_eq!(switches, 2);
    }
}
