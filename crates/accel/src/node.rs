//! Node-level replay of rank traces against shared GPUs.
//!
//! Fig. 4 of the paper varies the number of processes on one node while
//! holding total resources fixed; its shape (oversubscription pays until
//! ~2 processes per GPU, then per-process overheads win) is an interaction
//! between per-rank timelines and shared devices. This module is the
//! single-node surface over the discrete-event engine in
//! [`crate::engine`], which resolves that interaction:
//!
//! * **Host segments** of different ranks run concurrently (cores are
//!   partitioned among ranks; segments were sized for their thread count).
//! * **Kernels** share their GPU under the configured
//!   [`SchedulePolicyKind`] — by default the paper's MPS processor-sharing
//!   fluid when [`NodeConfig::mps`] is set, exclusive context time-slicing
//!   (with per-kernel switch charges, § 3.1.2) when it is not.
//! * **PCIe** is a per-GPU link shared equally by active transfers; with
//!   [`NodeConfig::overlap_transfers`] each rank gains an asynchronous
//!   transfer stream that overlaps data movement with host work, and
//!   kernels synchronise on it before launching.
//! * **Collective segments** barrier across all ranks and then occupy the
//!   node NIC (see [`crate::engine::simulate_cluster`] for the multi-node
//!   entry point).

use crate::calib::NodeCalib;
use crate::engine::sim::simulate;
use crate::engine::{EngineError, SchedulePolicyKind};
use crate::trace::RankTrace;

/// Node configuration for a replay.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    pub calib: NodeCalib,
    /// Number of GPUs on the node (Perlmutter: 4).
    pub gpus: u32,
    /// Whether the CUDA Multi-Process Service is active.
    pub mps: bool,
    /// Kernel arbitration policy; [`SchedulePolicyKind::Auto`] follows
    /// `mps` (the pre-engine behaviour).
    pub schedule: SchedulePolicyKind,
    /// Give each rank an asynchronous transfer stream: H2D/D2H segments
    /// enqueue without blocking and drain concurrently with host work;
    /// kernels synchronise on the stream before launching.
    pub overlap_transfers: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            calib: NodeCalib::default(),
            gpus: 4,
            mps: true,
            schedule: SchedulePolicyKind::Auto,
            overlap_transfers: false,
        }
    }
}

/// Result of a node replay.
#[derive(Debug, Clone)]
pub struct NodeResult {
    /// Wall-clock seconds until the last rank finished.
    pub wall_seconds: f64,
    /// Per-rank completion times.
    pub rank_seconds: Vec<f64>,
    /// Per-GPU busy seconds (device actually computing).
    pub gpu_busy: Vec<f64>,
    /// Per-GPU seconds lost to context switches (zero under MPS).
    pub switch_seconds: Vec<f64>,
}

/// Kind of a wall-clock [`TimelineEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimelineKind {
    /// Host-side computation (including kernel dispatch lead-ins).
    Host,
    /// Device kernel execution.
    Kernel,
    /// PCIe transfer.
    Transfer,
    /// A context swap charged to a non-MPS kernel (instant marker at the
    /// kernel's scheduling time; its cost is folded into the kernel).
    ContextSwitch,
    /// The network phase of an inter-node collective.
    Collective,
    /// Blocked time: a rank waiting at a collective barrier, or a kernel
    /// waiting for its transfer stream to drain.
    Wait,
}

impl TimelineKind {
    /// Stable lowercase name, used by the trace exporters.
    pub fn name(self) -> &'static str {
        match self {
            TimelineKind::Host => "host",
            TimelineKind::Kernel => "kernel",
            TimelineKind::Transfer => "transfer",
            TimelineKind::ContextSwitch => "context_switch",
            TimelineKind::Collective => "collective",
            TimelineKind::Wait => "wait",
        }
    }
}

/// One contention-resolved interval of a rank's replay: when the activity
/// actually ran on the shared node, in wall-clock seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Which rank.
    pub rank: usize,
    /// GPU involved (kernels, transfers, switches); `None` for host work.
    pub gpu: Option<usize>,
    /// Accounting label of the underlying segment.
    pub label: String,
    /// What ran.
    pub kind: TimelineKind,
    /// Wall-clock start.
    pub start: f64,
    /// Wall-clock end (≥ start; equal for instants).
    pub end: f64,
}

/// One occupancy sample: GPU `gpu` ran at `load` (0..=1 of its compute
/// throughput) over the interval starting at `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSample {
    /// Interval start, wall-clock seconds.
    pub t: f64,
    /// GPU index.
    pub gpu: usize,
    /// Fraction of the device's throughput in use (clamped to 1).
    pub load: f64,
}

/// The wall-clock timeline of a replay: what each rank ran when after
/// contention, plus piecewise-constant per-GPU occupancy.
#[derive(Debug, Clone, Default)]
pub struct NodeTimeline {
    /// Per-rank intervals, in completion order.
    pub events: Vec<TimelineEvent>,
    /// Per-GPU occupancy samples, one per replay step per GPU (each valid
    /// until the next sample for the same GPU).
    pub occupancy: Vec<GpuSample>,
}

impl NodeTimeline {
    /// Time-weighted mean occupancy of `gpu` over `[0, horizon]` seconds.
    /// Intervals (or parts of intervals) past the horizon do not count;
    /// a non-positive horizon or an unknown GPU yields 0.
    pub fn mean_occupancy(&self, gpu: usize, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        let samples: Vec<&GpuSample> = self.occupancy.iter().filter(|s| s.gpu == gpu).collect();
        let mut acc = 0.0;
        for (i, s) in samples.iter().enumerate() {
            let end = samples.get(i + 1).map_or(horizon, |n| n.t).min(horizon);
            let start = s.t.min(horizon);
            acc += s.load * (end - start).max(0.0);
        }
        acc / horizon
    }
}

/// A rank's trace does not fit in its share of device memory.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOom {
    /// GPU index that overflowed (global, node-major, in cluster replays).
    pub gpu: u32,
    /// Total peak bytes demanded by the ranks sharing it.
    pub demanded: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for NodeOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GPU {} out of memory: ranks demand {} B of {} B",
            self.gpu, self.demanded, self.capacity
        )
    }
}

impl std::error::Error for NodeOom {}

/// Replay `traces` (one per rank) on a node through the discrete-event
/// engine. Rank `r` uses GPU `r % gpus`. Returns the emergent wall time
/// or a typed [`EngineError`] — an OOM if the combined peak footprints
/// of the ranks sharing a GPU exceed its memory, a `NonFiniteCharge` if
/// a recorded duration is NaN or infinite.
pub fn simulate_node(traces: &[RankTrace], cfg: &NodeConfig) -> Result<NodeResult, EngineError> {
    let out = simulate(&[traces], cfg, false)?;
    Ok(node_result(out))
}

/// [`simulate_node`], additionally recording the contention-resolved
/// wall-clock timeline of every rank and per-GPU occupancy samples.
pub fn simulate_node_traced(
    traces: &[RankTrace],
    cfg: &NodeConfig,
) -> Result<(NodeResult, NodeTimeline), EngineError> {
    let mut out = simulate(&[traces], cfg, true)?;
    let timeline = std::mem::take(&mut out.timeline);
    Ok((node_result(out), timeline))
}

fn node_result(out: crate::engine::sim::SimOutput) -> NodeResult {
    NodeResult {
        wall_seconds: out.wall_seconds(),
        rank_seconds: out.rank_seconds,
        gpu_busy: out.gpu_busy,
        switch_seconds: out.switch_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelProfile;
    use crate::trace::{Segment, TransferDir};

    /// Config with MPS crowding disabled: these tests probe the pure
    /// fluid-sharing mechanics; crowding is exercised separately.
    fn cfg_no_crowding() -> NodeConfig {
        let mut cfg = NodeConfig::default();
        cfg.calib.gpu.mps_crowding = 0.0;
        cfg
    }

    fn trace_with(segments: Vec<Segment>, peak: u64) -> RankTrace {
        RankTrace {
            segments,
            peak_device_bytes: peak,
            ..RankTrace::default()
        }
    }

    fn host(seconds: f64) -> Segment {
        Segment::Host {
            seconds,
            label: "h".into(),
        }
    }

    #[test]
    fn single_rank_wall_time_is_sum_of_segments() {
        let cfg = NodeConfig::default();
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = trace_with(
            vec![
                host(1.0),
                Segment::Kernel {
                    profile: k,
                    dispatch: 0.0,
                },
                host(0.5),
            ],
            0,
        );
        let res = simulate_node(&[t], &cfg).unwrap();
        let expected = 1.0 + cfg.calib.gpu.launch_latency + solo + 0.5;
        assert!(
            (res.wall_seconds - expected).abs() < 1e-9,
            "{} vs {}",
            res.wall_seconds,
            expected
        );
    }

    #[test]
    fn host_segments_run_concurrently_across_ranks() {
        let cfg = NodeConfig::default();
        let traces: Vec<_> = (0..8).map(|_| trace_with(vec![host(2.0)], 0)).collect();
        let res = simulate_node(&traces, &cfg).unwrap();
        assert!((res.wall_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_kernels_time_share_under_mps() {
        // Two ranks on the same single GPU, each with a device-saturating
        // kernel: wall time is the serial sum.
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let res = simulate_node(&[t(), t()], &cfg).unwrap();
        assert!(
            (res.wall_seconds - 2.0 * solo).abs() / (2.0 * solo) < 0.01,
            "{} vs {}",
            res.wall_seconds,
            2.0 * solo
        );
    }

    #[test]
    fn underfilled_kernels_overlap_under_mps() {
        // Two ranks with kernels that each fill only 10% of the device:
        // they should run fully concurrently (wall ≈ solo, not 2×).
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        let items = cfg.calib.gpu.saturation_items * 0.1;
        let k = KernelProfile::uniform("k", items, 1e5, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let res = simulate_node(&[t(), t()], &cfg).unwrap();
        let lead = cfg.calib.gpu.launch_latency;
        assert!(
            res.wall_seconds < 1.2 * (solo + lead),
            "{} vs solo {}",
            res.wall_seconds,
            solo
        );
    }

    #[test]
    fn without_mps_kernels_serialize_with_switch_cost() {
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        cfg.mps = false;
        let items = cfg.calib.gpu.saturation_items * 0.1;
        let k = KernelProfile::uniform("k", items, 1e5, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let res = simulate_node(&[t(), t()], &cfg).unwrap();
        // Time-sliced contexts: each rank gets half its device, so the
        // wall is ~2x solo even though the kernels underfill the GPU —
        // compare with `underfilled_kernels_overlap_under_mps`.
        assert!(
            res.wall_seconds > 1.95 * solo,
            "{} vs {}",
            res.wall_seconds,
            2.0 * solo
        );
        let mps = simulate_node(&[t(), t()], &cfg_no_crowding_one_gpu_mps()).unwrap();
        assert!(res.wall_seconds > 1.5 * mps.wall_seconds);
    }

    fn cfg_no_crowding_one_gpu_mps() -> NodeConfig {
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        cfg.mps = true;
        cfg
    }

    #[test]
    fn mps_crowding_slows_shared_kernels() {
        let mut cfg = NodeConfig {
            gpus: 1,
            ..NodeConfig::default()
        };
        cfg.calib.gpu.mps_crowding = 0.5;
        let items = cfg.calib.gpu.saturation_items * 0.05;
        let k = KernelProfile::uniform("k", items, 1e5, 8.0);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let one = simulate_node(&[t()], &cfg).unwrap().wall_seconds;
        let four = simulate_node(&[t(), t(), t(), t()], &cfg)
            .unwrap()
            .wall_seconds;
        // Four clients: crowding 1 + 0.5*3 = 2.5x on otherwise-overlapping
        // kernels.
        assert!(four > 2.0 * one, "four {four} one {one}");
    }

    #[test]
    fn oversubscription_hides_host_gaps() {
        // A rank alternates host work and GPU work of equal duration. One
        // rank leaves the GPU idle half the time; two ranks on one GPU
        // interleave and finish in less than 2x a single rank's span.
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let mk = |n: usize| {
            let mut segs = Vec::new();
            for _ in 0..n {
                segs.push(host(solo));
                segs.push(Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                });
            }
            trace_with(segs, 0)
        };
        let one = simulate_node(&[mk(4)], &cfg).unwrap().wall_seconds;
        let two = simulate_node(&[mk(4), mk(4)], &cfg).unwrap().wall_seconds;
        // Perfect interleave would give two ≈ one; demand 25% saving vs 2x.
        assert!(two < 1.5 * one, "two={two} one={one}");
    }

    #[test]
    fn transfers_share_the_link() {
        let cfg = NodeConfig {
            gpus: 1,
            ..NodeConfig::default()
        };
        let bytes = 1e9;
        let t = || {
            trace_with(
                vec![Segment::Transfer {
                    bytes,
                    dir: TransferDir::HostToDevice,
                    label: "x".into(),
                }],
                0,
            )
        };
        let single = simulate_node(&[t()], &cfg).unwrap().wall_seconds;
        let double = simulate_node(&[t(), t()], &cfg).unwrap().wall_seconds;
        assert!((double / single - 2.0).abs() < 0.01, "{double} vs {single}");
    }

    #[test]
    fn oom_when_colocated_ranks_exceed_memory() {
        let cfg = NodeConfig {
            gpus: 1,
            ..NodeConfig::default()
        };
        let cap = cfg.calib.gpu.mem_bytes;
        let t = trace_with(vec![host(1.0)], cap / 2 + 1);
        let err = simulate_node(&[t.clone(), t], &cfg).unwrap_err();
        let oom = err.as_oom().expect("memory overflow is a typed OOM");
        assert_eq!(oom.gpu, 0);
        assert!(oom.demanded > cap);
        // A single rank with the same footprint fits.
        let t = trace_with(vec![host(1.0)], cap / 2 + 1);
        assert!(simulate_node(&[t], &cfg).is_ok());
    }

    #[test]
    fn ranks_spread_across_gpus() {
        // 4 ranks, 4 GPUs, saturating kernels: fully parallel.
        let cfg = NodeConfig::default();
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let res = simulate_node(&[t(), t(), t(), t()], &cfg).unwrap();
        assert!(res.wall_seconds < 1.1 * solo);
        for g in 0..4 {
            assert!(res.gpu_busy[g] > 0.0, "gpu {g} unused");
        }
    }

    #[test]
    fn empty_traces_finish_instantly() {
        let cfg = NodeConfig::default();
        let res = simulate_node(&[RankTrace::default()], &cfg).unwrap();
        assert_eq!(res.wall_seconds, 0.0);
    }

    #[test]
    fn timeline_covers_every_segment_in_wall_clock() {
        let cfg = NodeConfig::default();
        let k = KernelProfile::uniform("my_kernel", 1e9, 100.0, 8.0);
        let t = trace_with(
            vec![
                host(1.0),
                Segment::Kernel {
                    profile: k,
                    dispatch: 1e-4,
                },
                Segment::Transfer {
                    bytes: 1e8,
                    dir: TransferDir::DeviceToHost,
                    label: "accel_data_update_host".into(),
                },
            ],
            0,
        );
        let (res, tl) = simulate_node_traced(&[t], &cfg).unwrap();

        // Host 1.0s, dispatch lead-in, kernel, transfer: 4 intervals.
        assert_eq!(tl.events.len(), 4);
        assert_eq!(tl.events[0].kind, TimelineKind::Host);
        assert_eq!(tl.events[0].label, "h");
        assert_eq!(tl.events[1].label, "my_kernel/dispatch");
        assert_eq!(tl.events[2].kind, TimelineKind::Kernel);
        assert_eq!(tl.events[2].label, "my_kernel");
        assert_eq!(tl.events[2].gpu, Some(0));
        assert_eq!(tl.events[3].kind, TimelineKind::Transfer);

        // Intervals are contiguous and end at the wall time.
        let mut t = 0.0;
        for e in &tl.events {
            assert!((e.start - t).abs() < 1e-9, "{} vs {t}", e.start);
            assert!(e.end >= e.start);
            t = e.end;
        }
        assert!((t - res.wall_seconds).abs() < 1e-9);
    }

    #[test]
    fn occupancy_tracks_busy_time() {
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let t = trace_with(
            vec![Segment::Kernel {
                profile: k,
                dispatch: 0.0,
            }],
            0,
        );
        let (res, tl) = simulate_node_traced(&[t], &cfg).unwrap();
        assert!(!tl.occupancy.is_empty());
        // Integrated occupancy equals the busy-seconds accounting.
        let mean = tl.mean_occupancy(0, res.wall_seconds);
        assert!(
            (mean * res.wall_seconds - res.gpu_busy[0]).abs() < 1e-9,
            "integrated {} vs busy {}",
            mean * res.wall_seconds,
            res.gpu_busy[0]
        );
    }

    #[test]
    fn context_switches_appear_in_the_timeline() {
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        cfg.mps = false;
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let (_, tl) = simulate_node_traced(&[t(), t()], &cfg).unwrap();
        let switches = tl
            .events
            .iter()
            .filter(|e| e.kind == TimelineKind::ContextSwitch)
            .count();
        assert_eq!(switches, 2);
    }

    #[test]
    fn mean_occupancy_edge_cases() {
        let tl = NodeTimeline {
            events: Vec::new(),
            occupancy: vec![
                GpuSample {
                    t: 0.0,
                    gpu: 0,
                    load: 1.0,
                },
                GpuSample {
                    t: 2.0,
                    gpu: 0,
                    load: 0.0,
                },
                GpuSample {
                    t: 5.0,
                    gpu: 0,
                    load: 1.0,
                },
            ],
        };
        // Zero or negative horizon: defined as 0, not a division by zero.
        assert_eq!(tl.mean_occupancy(0, 0.0), 0.0);
        assert_eq!(tl.mean_occupancy(0, -1.0), 0.0);
        // GPU index with no samples: 0.
        assert_eq!(tl.mean_occupancy(7, 1.0), 0.0);
        // Interval [0, 2) at load 1 truncated by horizon 1: full occupancy,
        // not the 2.0 an unclamped integral would give.
        assert!((tl.mean_occupancy(0, 1.0) - 1.0).abs() < 1e-12);
        // Samples entirely past the horizon contribute nothing: over
        // horizon 4 only [0, 2) is loaded.
        assert!((tl.mean_occupancy(0, 4.0) - 0.5).abs() < 1e-12);
        // The final sample extends to the horizon.
        assert!((tl.mean_occupancy(0, 10.0) - (2.0 + 5.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn overlapped_transfers_hide_behind_host_work() {
        let mut cfg = NodeConfig {
            gpus: 1,
            ..NodeConfig::default()
        };
        let bytes = 1e9; // 40 ms on the calibrated link
        let xfer = cfg.calib.gpu.pcie_latency + bytes / cfg.calib.gpu.pcie_bw;
        let t = || {
            trace_with(
                vec![
                    Segment::Transfer {
                        bytes,
                        dir: TransferDir::HostToDevice,
                        label: "h2d".into(),
                    },
                    host(xfer),
                ],
                0,
            )
        };
        let sync = simulate_node(&[t()], &cfg).unwrap().wall_seconds;
        cfg.overlap_transfers = true;
        let (res, tl) = simulate_node_traced(&[t()], &cfg).unwrap();
        // Sequential: transfer + host. Overlapped: they run concurrently.
        assert!((sync - 2.0 * xfer).abs() < 1e-9, "sync {sync}");
        assert!(
            (res.wall_seconds - xfer).abs() < 1e-9,
            "overlap {} vs {xfer}",
            res.wall_seconds
        );
        // The transfer still shows up as a timed interval.
        assert!(tl
            .events
            .iter()
            .any(|e| e.kind == TimelineKind::Transfer && e.end > e.start));
    }

    #[test]
    fn kernels_synchronize_on_the_transfer_stream() {
        let mut cfg = NodeConfig {
            gpus: 1,
            ..NodeConfig::default()
        };
        cfg.overlap_transfers = true;
        let bytes = 1e9;
        let xfer = cfg.calib.gpu.pcie_latency + bytes / cfg.calib.gpu.pcie_bw;
        let k = KernelProfile::uniform("k", 1e9, 100.0, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = trace_with(
            vec![
                Segment::Transfer {
                    bytes,
                    dir: TransferDir::HostToDevice,
                    label: "h2d".into(),
                },
                Segment::Kernel {
                    profile: k,
                    dispatch: 0.0,
                },
            ],
            0,
        );
        let (res, tl) = simulate_node_traced(&[t], &cfg).unwrap();
        // The kernel must not start before its input lands: wall covers
        // the full transfer plus the kernel.
        let expected = xfer + cfg.calib.gpu.launch_latency + solo;
        assert!(
            (res.wall_seconds - expected).abs() < 1e-6,
            "{} vs {expected}",
            res.wall_seconds
        );
        // The stream synchronisation is visible as a wait interval.
        assert!(tl
            .events
            .iter()
            .any(|e| e.kind == TimelineKind::Wait && e.label == "stream_sync"));
    }

    #[test]
    fn fifo_and_priority_policies_serialize_underfilled_kernels() {
        // Under MPS two 10%-utilisation kernels overlap; FIFO and priority
        // arbitration grant the device exclusively, so they serialize.
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        let items = cfg.calib.gpu.saturation_items * 0.1;
        let k = KernelProfile::uniform("k", items, 1e5, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let overlap = simulate_node(&[t(), t()], &cfg).unwrap().wall_seconds;
        assert!(overlap < 1.2 * solo, "mps overlap {overlap} vs {solo}");
        for kind in [SchedulePolicyKind::Fifo, SchedulePolicyKind::Priority] {
            cfg.schedule = kind;
            let serial = simulate_node(&[t(), t()], &cfg).unwrap().wall_seconds;
            assert!(serial > 1.9 * solo, "{kind}: {serial} vs 2x{solo}");
        }
    }

    #[test]
    fn explicit_schedule_overrides_the_mps_flag() {
        // schedule = MpsFluid with mps = false must behave like MPS.
        let mut cfg = cfg_no_crowding();
        cfg.gpus = 1;
        cfg.mps = false;
        cfg.schedule = SchedulePolicyKind::MpsFluid;
        let items = cfg.calib.gpu.saturation_items * 0.1;
        let k = KernelProfile::uniform("k", items, 1e5, 8.0);
        let solo = k.solo_seconds(&cfg.calib.gpu);
        let t = || {
            trace_with(
                vec![Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 0.0,
                }],
                0,
            )
        };
        let res = simulate_node(&[t(), t()], &cfg).unwrap();
        assert!(res.wall_seconds < 1.2 * solo);
        assert_eq!(res.switch_seconds[0], 0.0);
    }
}
