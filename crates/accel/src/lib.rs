//! An execution-driven accelerator simulator.
//!
//! The paper this workspace reproduces measures TOAST kernels on Perlmutter
//! GPU nodes (4x NVIDIA A100 + 64-core AMD Milan per node). This crate is
//! the substitution for that hardware: a deterministic cost-model simulator
//! that the two "GPU frameworks" in this workspace (`arrayjit` and
//! `offload`) submit work to.
//!
//! The design separates *execution* from *timing*:
//!
//! * Frameworks execute kernel numerics eagerly on the host (so results are
//!   real and testable), and
//! * record what the target hardware would have done as a trace of
//!   [`trace::Segment`]s on a per-process [`context::Context`] — host
//!   compute, kernel launches (with a [`profile::KernelProfile`] work
//!   descriptor), PCIe transfers, allocations.
//!
//! A node-level discrete-event simulation ([`node`]) then replays the
//! traces of all ranks against shared resources: each GPU is a fluid
//! processor-sharing server (the MPS model) or an exclusive
//! context-switching server (the no-MPS model the paper's § 3.1.2
//! describes), each PCIe link is a shared channel, and host segments run
//! concurrently across ranks. Wall time, per-GPU busy time, queueing and
//! out-of-memory conditions all *emerge* from the replay.
//!
//! Calibration constants live in [`calib`] and are documented against
//! public A100/Milan specifications; see `DESIGN.md` § 5 for the honesty
//! policy on constants tuned to the paper's measurements.

pub mod calib;
pub mod comm;
pub mod context;
pub mod node;
pub mod profile;
pub mod trace;

pub use calib::{CpuCalib, DeviceCalib, NodeCalib};
pub use context::{Context, MemoryError};
pub use node::{
    simulate_node, simulate_node_traced, GpuSample, NodeConfig, NodeResult, NodeTimeline,
    TimelineEvent, TimelineKind,
};
pub use profile::KernelProfile;
pub use trace::{RankTrace, Segment, SpanEvent, SpanKind, TransferDir};
