//! An execution-driven accelerator simulator.
//!
//! The paper this workspace reproduces measures TOAST kernels on Perlmutter
//! GPU nodes (4x NVIDIA A100 + 64-core AMD Milan per node). This crate is
//! the substitution for that hardware: a deterministic cost-model simulator
//! that the two "GPU frameworks" in this workspace (`arrayjit` and
//! `offload`) submit work to.
//!
//! The design separates *execution* from *timing*:
//!
//! * Frameworks execute kernel numerics eagerly on the host (so results are
//!   real and testable), and
//! * record what the target hardware would have done as a trace of
//!   [`trace::Segment`]s on a per-process [`context::Context`] — host
//!   compute, kernel launches (with a [`profile::KernelProfile`] work
//!   descriptor), PCIe transfers, allocations.
//!
//! A discrete-event engine ([`engine`]) then replays the traces of all
//! ranks against typed shared resources on one virtual clock: each GPU is
//! an SM pool arbitrated by a pluggable [`engine::SchedulePolicy`] (the
//! MPS processor-sharing fluid, exclusive context time-slicing as the
//! paper's § 3.1.2 describes, FIFO or priority what-ifs), each PCIe link
//! is a shared channel with optional per-rank asynchronous transfer
//! streams, each node NIC carries inter-node collectives, and host
//! segments run concurrently across ranks. Wall time, per-GPU busy time,
//! queueing, network congestion and out-of-memory conditions all *emerge*
//! from the replay. [`simulate_node`] is the single-node surface over the
//! engine; [`engine::simulate_cluster`] replays many nodes at once.
//!
//! Calibration constants live in [`calib`] and are documented against
//! public A100/Milan specifications; see `DESIGN.md` § 5 for the honesty
//! policy on constants tuned to the paper's measurements.
//!
//! Because traces are pure work descriptors, a run can be **recorded** and
//! later re-priced under a different calibration without re-running any
//! numerics: [`whatif`] serializes the charges as JSONL and replays them
//! through the engine under H100-like, NVLink-like or faster-NIC presets.
//! [`mod@sweep`] batches that: one compile of the recorded workload serves an
//! entire calibration × GPU-count × schedule grid (each point materializes
//! only a per-calibration cost vector), with lower-bound pruning against a
//! deadline and Pareto-front extraction over makespan vs hardware cost.
//!
//! Everything the engine would reject at replay time is also *statically
//! decidable* from the recorded work description: [`analyze`] checks a
//! workload without executing any events (collective/barrier matching,
//! peak-residency OOM prediction, cost sanity) and emits typed
//! [`analyze::Diagnostic`]s — the admission filter in front of the
//! engine. See `DESIGN.md` § 7.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod calib;
pub mod comm;
pub mod context;
pub mod engine;
pub mod node;
pub mod profile;
pub mod sweep;
pub mod trace;
pub mod whatif;

pub use analyze::{
    check_calib, check_workload, check_workload_under, AnalyzeConfig, Code, Diagnostic, Locus,
    Report, Severity,
};
pub use calib::{CalibConstraint, CalibError, CpuCalib, DeviceCalib, NetCalib, NodeCalib};
pub use context::{Context, MemoryError};
pub use engine::{
    simulate_cluster, simulate_cluster_traced, ClusterResult, EngineError, SchedulePolicy,
    SchedulePolicyKind,
};
pub use node::{
    simulate_node, simulate_node_traced, GpuSample, NodeConfig, NodeOom, NodeResult, NodeTimeline,
    TimelineEvent, TimelineKind,
};
pub use profile::KernelProfile;
pub use sweep::{
    sweep, sweep_digest, sweep_preflight, sweep_resumable, workload_digest, CompiledSweep,
    SweepCalib, SweepCheckpoint, SweepPoint, SweepResult, SweepResumeError, SweepSpec,
};
pub use trace::{RankTrace, Segment, SpanEvent, SpanKind, TransferDir};
pub use whatif::{RecordMeta, RecordedWorkload, Replayed, UnknownPreset, WhatifCalib, WhatifError};
