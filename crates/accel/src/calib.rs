//! Hardware and framework calibration constants.
//!
//! Every timing the simulator produces flows through the numbers in this
//! module, so they are collected in one place and documented. Three kinds
//! of constants appear:
//!
//! 1. **Public hardware specifications** (A100 FP64 peak, HBM2e bandwidth,
//!    PCIe gen4 bandwidth, Milan core count) — taken from vendor datasheets.
//! 2. **Well-known rules of thumb** (kernel launch latency ~5 µs, achieved
//!    fractions of peak) — standard values from the GPU literature.
//! 3. **Paper-calibrated factors** — where the paper reports a behaviour we
//!    cannot derive from first principles (e.g. the XLA CPU backend running
//!    7.4× slower than parallel C++), the factor is set to land in the
//!    reported range and is flagged `paper-calibrated` in its doc comment.

/// A calibration field carries a value the cost model cannot price: a
/// zero or negative bandwidth/throughput turns a roofline division into
/// an infinity, and a negative or non-finite latency poisons every
/// derived charge. Raised at construction/intake time by
/// [`NodeCalib::validate`] and [`NetCalib::validate`] so degenerate
/// rooflines are rejected with the offending field named instead of
/// surfacing later as an [`crate::EngineError::NonFiniteCharge`]
/// mid-replay.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibError {
    /// Dotted path of the offending field, e.g. `gpu.pcie_bw`.
    pub field: &'static str,
    /// The rejected value.
    pub value: f64,
    /// What the field must satisfy.
    pub constraint: CalibConstraint,
}

/// The constraint a calibration field violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibConstraint {
    /// Must be finite and strictly positive (bandwidths, throughputs,
    /// capacities, saturation points — anything the model divides by).
    Positive,
    /// Must be finite and not negative (latencies, overheads, penalty
    /// factors).
    NonNegative,
}

impl std::fmt::Display for CalibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let need = match self.constraint {
            CalibConstraint::Positive => "a finite value > 0",
            CalibConstraint::NonNegative => "a finite value >= 0",
        };
        write!(
            f,
            "calibration field '{}' must be {} (got {})",
            self.field, need, self.value
        )
    }
}

impl std::error::Error for CalibError {}

fn positive(field: &'static str, value: f64) -> Result<(), CalibError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(CalibError {
            field,
            value,
            constraint: CalibConstraint::Positive,
        })
    }
}

fn non_negative(field: &'static str, value: f64) -> Result<(), CalibError> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(CalibError {
            field,
            value,
            constraint: CalibConstraint::NonNegative,
        })
    }
}

/// Cost model of one accelerator (A100-like).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCalib {
    /// Peak FP64 throughput, flop/s. A100 (non-tensor-core FP64): 9.7 TF.
    pub fp64_peak: f64,
    /// Achievable HBM bandwidth, B/s. A100 40 GB HBM2e: 1.555 TB/s peak;
    /// we use a standard ~80% achieved fraction.
    pub hbm_bw: f64,
    /// Device memory capacity in bytes (40 GB A100).
    pub mem_bytes: u64,
    /// Host-visible kernel launch latency in seconds (~5 µs, the standard
    /// CUDA figure).
    pub launch_latency: f64,
    /// Work items needed to saturate the device. A100: 108 SMs × 2048
    /// resident threads.
    pub saturation_items: f64,
    /// PCIe gen4 ×16 effective host↔device bandwidth, B/s (~25 GB/s).
    pub pcie_bw: f64,
    /// Per-transfer fixed latency in seconds (driver + DMA setup ~10 µs).
    pub pcie_latency: f64,
    /// Cost of a CUDA context switch between processes when MPS is off:
    /// a full device state swap plus scheduling-quantum loss, several
    /// milliseconds in practice (paper § 3.1.2: without MPS the driver
    /// context-switches between processes, capping throughput at ~one
    /// process per device).
    pub context_switch: f64,
    /// MPS scheduling/crowding penalty per *additional* client sharing a
    /// GPU: kernels slow by `1 + mps_crowding · (clients − 1)`.
    /// Paper-calibrated: Fig. 4's speedup peaks at 2 processes per GPU and
    /// "slowly decreases … as we progressively lose the oversubscription
    /// benefit".
    pub mps_crowding: f64,
    /// Device-side allocation cost (cudaMalloc-style, ~100 µs); the reason
    /// both the paper's OpenMP port and JAX use memory pools.
    pub alloc_latency: f64,
}

impl Default for DeviceCalib {
    fn default() -> Self {
        Self {
            fp64_peak: 9.7e12,
            hbm_bw: 0.8 * 1.555e12,
            mem_bytes: 40 * (1 << 30) as u64,
            launch_latency: 5e-6,
            saturation_items: 108.0 * 2048.0,
            pcie_bw: 2.5e10,
            pcie_latency: 1e-5,
            context_switch: 6e-3,
            mps_crowding: 0.5,
            alloc_latency: 1e-4,
        }
    }
}

impl DeviceCalib {
    /// The paper's device: A100 40 GB over PCIe gen4 (the default).
    pub fn a100() -> Self {
        Self::default()
    }

    /// An H100-SXM-like device for what-if repricing: 33.5 TF FP64
    /// (non-tensor-core), 3.35 TB/s HBM3 at the same ~80% achieved
    /// fraction, 80 GB, 132 SMs, PCIe gen5 ×16 (~50 GB/s). Launch,
    /// context-switch and allocation latencies are driver-side costs and
    /// carry over from the A100 calibration.
    pub fn h100() -> Self {
        Self {
            fp64_peak: 3.35e13,
            hbm_bw: 0.8 * 3.35e12,
            mem_bytes: 80 * (1 << 30) as u64,
            saturation_items: 132.0 * 2048.0,
            pcie_bw: 5e10,
            ..Self::default()
        }
    }

    /// Swap the PCIe host link for an NVLink-like one (NVLink2
    /// host↔device as on Power9+V100 systems: ~75 GB/s per direction,
    /// roughly half the DMA setup latency). Everything else unchanged —
    /// the what-if isolates the interconnect.
    pub fn with_nvlink_host_link(mut self) -> Self {
        self.pcie_bw = 7.5e10;
        self.pcie_latency = 5e-6;
        self
    }

    /// Reject values the cost model cannot price (see [`CalibError`]).
    pub fn validate(&self) -> Result<(), CalibError> {
        positive("gpu.fp64_peak", self.fp64_peak)?;
        positive("gpu.hbm_bw", self.hbm_bw)?;
        positive("gpu.mem_bytes", self.mem_bytes as f64)?;
        positive("gpu.saturation_items", self.saturation_items)?;
        positive("gpu.pcie_bw", self.pcie_bw)?;
        non_negative("gpu.launch_latency", self.launch_latency)?;
        non_negative("gpu.pcie_latency", self.pcie_latency)?;
        non_negative("gpu.context_switch", self.context_switch)?;
        non_negative("gpu.mps_crowding", self.mps_crowding)?;
        non_negative("gpu.alloc_latency", self.alloc_latency)?;
        Ok(())
    }
}

/// Cost model of the host CPU (64-core AMD Milan-like).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCalib {
    /// Cores per node.
    pub cores: u32,
    /// Achieved FP64 throughput of one core, flop/s. Milan: 2.45 GHz ×
    /// 2×256-bit FMA ≈ 39 GF peak; HPC codes achieve ~25–30%.
    pub core_flops: f64,
    /// Achieved memory bandwidth of the socket, B/s (8-channel DDR4-3200:
    /// 204.8 GB/s peak, ~70% achieved).
    pub socket_bw: f64,
    /// Host memory capacity in bytes (256 GB per Perlmutter GPU node).
    pub mem_bytes: u64,
    /// Thread-team scaling penalty: kernel time is inflated by
    /// `1 + thread_overhead · log2(threads)` — OpenMP synchronisation and
    /// NUMA effects make one 64-thread process slower than 16 four-thread
    /// processes on the same data, part of why the paper's CPU curve falls
    /// with process count (Fig. 4).
    pub thread_overhead: f64,
}

impl Default for CpuCalib {
    fn default() -> Self {
        Self {
            cores: 64,
            core_flops: 1.1e10,
            socket_bw: 1.4e11,
            mem_bytes: 256 * (1 << 30) as u64,
            thread_overhead: 0.12,
        }
    }
}

impl CpuCalib {
    /// Reject values the cost model cannot price (see [`CalibError`]).
    pub fn validate(&self) -> Result<(), CalibError> {
        positive("cpu.cores", self.cores as f64)?;
        positive("cpu.core_flops", self.core_flops)?;
        positive("cpu.socket_bw", self.socket_bw)?;
        positive("cpu.mem_bytes", self.mem_bytes as f64)?;
        non_negative("cpu.thread_overhead", self.thread_overhead)?;
        Ok(())
    }
}

/// Framework-level overheads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkCalib {
    /// arrayjit per-call dispatch cost: signature hashing + JIT-cache
    /// lookup + argument staging. Paper-calibrated: footnote 10 attributes
    /// the consistent ~20% JAX deficit to runtime-level overheads.
    pub jit_dispatch: f64,
    /// arrayjit one-time trace+compile cost per (function, shape
    /// signature), seconds. JAX compiles small kernels like these in
    /// ~100 ms each; the paper's runtimes include this cost.
    pub jit_compile: f64,
    /// offload per-target-region entry cost (runtime bookkeeping on top of
    /// the raw launch).
    pub omp_region: f64,
    /// Multiplier on device memory footprint for the arrayjit pool slack +
    /// padded intermediates. Paper-calibrated: the medium problem fits one
    /// OMP process on a 40 GB device but not one JAX process (§ 4.1).
    pub jit_mem_overhead: f64,
    /// Fixed device bytes each arrayjit process reserves (CUDA context +
    /// XLA workspace). Paper-calibrated jointly with
    /// `omp_process_device_bytes` so Fig. 4's out-of-memory pattern
    /// emerges: JAX OOMs at 1 and 64 processes, offload only at 64.
    pub jit_process_device_bytes: f64,
    /// Fixed device bytes each offload process reserves (CUDA context +
    /// NVHPC OpenMP runtime device heap). Paper-calibrated; see above.
    pub omp_process_device_bytes: f64,
    /// Proportional runtime-level inefficiency of the arrayjit device path
    /// relative to the offload path: the extra host-side time per call is
    /// `(factor − 1) ×` the call's device time. Paper-calibrated: footnote
    /// 10 observes JAX's deficit is *proportional* to runtime rather than
    /// a constant per-call cost, "pointing towards performance differences
    /// at the runtime level".
    pub jit_runtime_factor: f64,
    /// Sequential-efficiency factor of the arrayjit CPU backend relative to
    /// one optimised C++ core. Paper-calibrated: § 4.2 reports the CPU
    /// backend "roughly comparable to single-core C++" yet 7.4× slower than
    /// the 4-thread parallel baseline including copy overheads.
    pub jit_cpu_backend_eff: f64,
}

impl Default for FrameworkCalib {
    fn default() -> Self {
        Self {
            jit_dispatch: 4e-5,
            jit_compile: 0.12,
            omp_region: 8e-6,
            jit_mem_overhead: 1.7,
            jit_process_device_bytes: 2.2e9,
            omp_process_device_bytes: 2.6e9,
            jit_runtime_factor: 2.5,
            jit_cpu_backend_eff: 0.27,
        }
    }
}

impl FrameworkCalib {
    /// Reject values the cost model cannot price (see [`CalibError`]).
    pub fn validate(&self) -> Result<(), CalibError> {
        non_negative("framework.jit_dispatch", self.jit_dispatch)?;
        non_negative("framework.jit_compile", self.jit_compile)?;
        non_negative("framework.omp_region", self.omp_region)?;
        positive("framework.jit_mem_overhead", self.jit_mem_overhead)?;
        non_negative(
            "framework.jit_process_device_bytes",
            self.jit_process_device_bytes,
        )?;
        non_negative(
            "framework.omp_process_device_bytes",
            self.omp_process_device_bytes,
        )?;
        positive("framework.jit_runtime_factor", self.jit_runtime_factor)?;
        positive("framework.jit_cpu_backend_eff", self.jit_cpu_backend_eff)?;
        Ok(())
    }
}

/// Full node calibration: CPU + identical GPUs + framework factors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeCalib {
    pub cpu: CpuCalib,
    pub gpu: DeviceCalib,
    pub framework: FrameworkCalib,
}

impl NodeCalib {
    /// Calibration for a run whose *data* is scaled down by `work_scale`
    /// relative to the paper's problem sizes.
    ///
    /// Bandwidths and flop rates are physical and stay fixed, but every
    /// fixed per-call latency (launches, dispatch, compiles, transfers,
    /// context switches), every capacity (device and host memory) and the
    /// device's saturation point scale *with* the data, so that simulated
    /// runtimes are exactly `work_scale ×` the paper-scale runtimes and
    /// every reported *ratio* is scale-invariant. See DESIGN.md § 10.
    pub fn scaled(work_scale: f64) -> Self {
        Self::default().rescaled(work_scale)
    }

    /// Apply the [`NodeCalib::scaled`] transformation to *this*
    /// calibration instead of the default one — what-if presets are
    /// defined at paper scale and rescaled to match the recorded run's
    /// `work_scale` so repriced and original runs stay comparable.
    pub fn rescaled(mut self, work_scale: f64) -> Self {
        assert!(work_scale > 0.0 && work_scale <= 1.0);
        let c = &mut self;
        c.gpu.launch_latency *= work_scale;
        c.gpu.pcie_latency *= work_scale;
        c.gpu.context_switch *= work_scale;
        c.gpu.alloc_latency *= work_scale;
        c.gpu.mem_bytes = ((c.gpu.mem_bytes as f64) * work_scale) as u64;
        c.gpu.saturation_items *= work_scale;
        c.cpu.mem_bytes = ((c.cpu.mem_bytes as f64) * work_scale) as u64;
        c.framework.jit_dispatch *= work_scale;
        c.framework.jit_compile *= work_scale;
        c.framework.omp_region *= work_scale;
        c.framework.jit_process_device_bytes *= work_scale;
        c.framework.omp_process_device_bytes *= work_scale;
        self
    }

    /// Reject a calibration the cost model cannot price: non-positive
    /// bandwidths/throughputs/capacities and negative or non-finite
    /// latencies, each named by its dotted field path. Scenario intake
    /// (`Scenario::validate` in the `scenario` crate) and the static
    /// analyzer both call this, so a degenerate roofline is a typed
    /// admission error instead of a mid-replay `NonFiniteCharge`.
    pub fn validate(&self) -> Result<(), CalibError> {
        self.cpu.validate()?;
        self.gpu.validate()?;
        self.framework.validate()?;
        Ok(())
    }
}

/// Interconnect model for multi-node runs (Slingshot-like).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetCalib {
    /// Per-NIC injection bandwidth, B/s (Slingshot-10: ~12.5 GB/s).
    pub bw: f64,
    /// Per-message latency, seconds.
    pub latency: f64,
}

impl Default for NetCalib {
    fn default() -> Self {
        Self {
            bw: 1.25e10,
            latency: 2e-6,
        }
    }
}

impl NetCalib {
    /// Reject values the cost model cannot price (see [`CalibError`]).
    pub fn validate(&self) -> Result<(), CalibError> {
        positive("net.bw", self.bw)?;
        non_negative("net.latency", self.latency)?;
        Ok(())
    }

    /// Perlmutter's interconnect at measurement time: Slingshot-10
    /// (~12.5 GB/s per NIC). The default.
    pub fn slingshot10() -> Self {
        Self::default()
    }

    /// Slingshot-11 (200 Gb/s NICs, ~25 GB/s) — the upgrade Perlmutter
    /// later received, doubling injection bandwidth at the same latency.
    pub fn slingshot11() -> Self {
        Self {
            bw: 2.5e10,
            ..Self::default()
        }
    }
}

/// A dimensionless per-node cost proxy for what-if sweeps, normalised so
/// the paper's machine (A100 + PCIe gen4 + Slingshot-10) prices at 1.0.
///
/// The weights mirror how accelerator node pricing is dominated by the
/// GPU: half the price tracks FP64 throughput, a quarter HBM bandwidth,
/// with smaller shares for the host link and the NIC. It is deliberately
/// coarse — the sweep optimizer only needs a *monotone* proxy to rank
/// configurations on the cost axis of the Pareto front, not dollars.
/// Note [`NodeCalib::rescaled`] leaves every input of this function
/// untouched, so the proxy is work-scale-invariant.
pub fn relative_node_price(node: &NodeCalib, net: &NetCalib) -> f64 {
    let base_gpu = DeviceCalib::a100();
    let base_net = NetCalib::slingshot10();
    0.5 * (node.gpu.fp64_peak / base_gpu.fp64_peak)
        + 0.25 * (node.gpu.hbm_bw / base_gpu.hbm_bw)
        + 0.15 * (node.gpu.pcie_bw / base_gpu.pcie_bw)
        + 0.1 * (net.bw / base_net.bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physical() {
        let d = DeviceCalib::default();
        assert!(d.fp64_peak > 1e12 && d.fp64_peak < 1e14);
        assert!(d.hbm_bw > d.pcie_bw, "HBM must beat PCIe");
        assert!(d.mem_bytes as f64 > 1e10);
        let c = CpuCalib::default();
        // Node-level GPU FP64 peak should dwarf the CPU's: the premise of
        // the whole porting exercise.
        assert!(4.0 * d.fp64_peak > 10.0 * c.cores as f64 * c.core_flops);
    }

    #[test]
    fn presets_are_ordered_by_generation() {
        let a100 = DeviceCalib::a100();
        let h100 = DeviceCalib::h100();
        assert!(h100.fp64_peak > 3.0 * a100.fp64_peak);
        assert!(h100.hbm_bw > 2.0 * a100.hbm_bw);
        assert!(h100.mem_bytes == 2 * a100.mem_bytes);
        assert!(h100.pcie_bw == 2.0 * a100.pcie_bw);
        let nvl = DeviceCalib::a100().with_nvlink_host_link();
        assert!(nvl.pcie_bw > a100.pcie_bw);
        assert!(nvl.pcie_latency < a100.pcie_latency);
        // Only the link changed.
        assert_eq!(nvl.fp64_peak, a100.fp64_peak);
        assert!(NetCalib::slingshot11().bw == 2.0 * NetCalib::slingshot10().bw);
    }

    #[test]
    fn rescaled_applies_to_any_base() {
        // The default-based path is unchanged.
        let scaled = NodeCalib::scaled(1e-3);
        let rescaled = NodeCalib::default().rescaled(1e-3);
        assert_eq!(scaled, rescaled);
        // A preset rescales its own values, not the default's.
        let h = NodeCalib {
            gpu: DeviceCalib::h100(),
            ..NodeCalib::default()
        };
        let hs = h.rescaled(1e-3);
        assert_eq!(hs.gpu.mem_bytes, (80u64 << 30) / 1000);
        assert_eq!(hs.gpu.fp64_peak, DeviceCalib::h100().fp64_peak);
    }

    #[test]
    fn node_price_is_normalised_and_ordered() {
        let a100 = NodeCalib::default();
        let ss10 = NetCalib::slingshot10();
        assert_eq!(relative_node_price(&a100, &ss10), 1.0);
        let h100 = NodeCalib {
            gpu: DeviceCalib::h100(),
            ..a100
        };
        // H100-class silicon costs a multiple of the A100 baseline but
        // less than its raw FP64 ratio (~3.45x) — the non-GPU shares damp
        // the proxy.
        let h = relative_node_price(&h100, &ss10);
        assert!(h > 2.0 && h < 3.45, "h100 price {h}");
        // Link/NIC upgrades are cheap relative to a new GPU generation.
        let nvl = NodeCalib {
            gpu: DeviceCalib::a100().with_nvlink_host_link(),
            ..a100
        };
        let nvl_price = relative_node_price(&nvl, &ss10);
        assert!(
            nvl_price > 1.0 && nvl_price < 1.5,
            "nvlink price {nvl_price}"
        );
        let ss11_price = relative_node_price(&a100, &NetCalib::slingshot11());
        assert!(ss11_price > 1.0 && ss11_price < nvl_price);
        // Work-scale rescaling must not move the price (ratios of runs at
        // different scales stay comparable).
        assert_eq!(relative_node_price(&h100.rescaled(1e-3), &ss10), h);
    }

    #[test]
    fn every_preset_validates() {
        for gpu in [
            DeviceCalib::a100(),
            DeviceCalib::h100(),
            DeviceCalib::a100().with_nvlink_host_link(),
            DeviceCalib::h100().with_nvlink_host_link(),
        ] {
            let node = NodeCalib {
                gpu,
                ..NodeCalib::default()
            };
            node.validate().expect("preset calibration is priceable");
            node.rescaled(1e-3)
                .validate()
                .expect("rescaled preset is priceable");
        }
        NetCalib::slingshot10().validate().expect("ss10");
        NetCalib::slingshot11().validate().expect("ss11");
    }

    #[test]
    fn validate_names_the_offending_field() {
        let mut node = NodeCalib::default();
        node.gpu.pcie_bw = 0.0;
        let err = node.validate().unwrap_err();
        assert_eq!(err.field, "gpu.pcie_bw");
        assert_eq!(err.constraint, CalibConstraint::Positive);
        assert!(err.to_string().contains("'gpu.pcie_bw'"));
        assert!(err.to_string().contains("> 0"));

        let mut node = NodeCalib::default();
        node.gpu.launch_latency = -1.0;
        assert_eq!(node.validate().unwrap_err().field, "gpu.launch_latency");

        let mut node = NodeCalib::default();
        node.cpu.core_flops = f64::NAN;
        assert_eq!(node.validate().unwrap_err().field, "cpu.core_flops");

        let mut node = NodeCalib::default();
        node.framework.jit_runtime_factor = -2.0;
        assert_eq!(
            node.validate().unwrap_err().field,
            "framework.jit_runtime_factor"
        );

        let net = NetCalib {
            bw: f64::INFINITY,
            ..NetCalib::default()
        };
        let err = net.validate().unwrap_err();
        assert_eq!(err.field, "net.bw");
    }

    #[test]
    fn framework_overheads_are_ordered() {
        let f = FrameworkCalib::default();
        // Per-call: jit dispatch > omp region entry > raw launch.
        let d = DeviceCalib::default();
        assert!(f.jit_dispatch > f.omp_region);
        assert!(f.omp_region > d.launch_latency);
        // Compile is orders of magnitude above dispatch.
        assert!(f.jit_compile > 1000.0 * f.jit_dispatch);
    }
}
