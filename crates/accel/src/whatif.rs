//! Trace-driven what-if repricing: record every charge a simulated run
//! made, then replay it under a *different* calibration.
//!
//! The paper's headline numbers are relative runtimes on one fixed
//! machine (A100 + PCIe gen4 + Slingshot-10). A [`RecordedWorkload`]
//! captures, per rank, everything the discrete-event engine would charge
//! — kernel work descriptors, transfer bytes and directions, host
//! seconds, allocation latencies, collective volumes — plus the replay
//! configuration and the calibration the run was recorded under. Feeding
//! it back through [`RecordedWorkload::replay`] with a different
//! [`NodeCalib`]/[`NetCalib`] (an H100-like device, an NVLink-like host
//! link, a faster NIC, more GPUs) re-prices the run **without re-running
//! any kernel numerics**: the engine recomputes kernel and transfer
//! times from the new calibration, and [`RecordedWorkload::reprice`]
//! rescales the charges whose cost was baked in at record time (host
//! work, allocation latency, collective solo cost).
//!
//! Replaying under the *identical* calibration must reproduce the live
//! run's makespan exactly — the differential-test oracle that locks this
//! module down (`crates/bench/tests/whatif_differential.rs`, and the
//! `whatif` binary's identity smoke in `ci.sh`).
//!
//! The on-disk format is JSONL (one meta line, then one line per rank
//! declaration and per segment), hand-rolled like the trace export in
//! `repro-bench` because the workspace builds without registry
//! dependencies. Parsing returns a typed [`WhatifError`] — a malformed
//! line reports its line number instead of panicking — and
//! serialize → parse → re-serialize is byte-identical.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::calib::{DeviceCalib, NetCalib, NodeCalib};
use crate::comm::allreduce_seconds;
use crate::context::LabelStats;
use crate::engine::{simulate_cluster, ClusterResult, EngineError, SchedulePolicyKind};
use crate::node::NodeConfig;
use crate::profile::KernelProfile;
use crate::trace::{RankTrace, Segment, TransferDir};

/// Everything needed to replay a recording without the code that made it:
/// the replay configuration, the calibration in force at record time, and
/// provenance for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordMeta {
    /// Format version (currently 1).
    pub version: u32,
    /// Free-form description of the recorded configuration (shown in
    /// replay reports).
    pub label: String,
    /// GPUs per node at record time.
    pub gpus: u32,
    /// Whether MPS was active.
    pub mps: bool,
    /// Kernel arbitration policy.
    pub schedule: SchedulePolicyKind,
    /// Whether per-rank async transfer streams were active.
    pub overlap_transfers: bool,
    /// Ranks the analytic collective formula was priced for (nodes ×
    /// procs of the *job*, which may exceed the replayed node count on
    /// the legacy single-node path).
    pub total_ranks: u32,
    /// The problem's work-scale factor — presets defined at paper scale
    /// must be [`NodeCalib::rescaled`] by this before repricing.
    pub work_scale: f64,
    /// Makespan of the live run, for delta reports.
    pub live_wall_seconds: f64,
    /// Node calibration the charges were recorded under.
    pub node_calib: NodeCalib,
    /// Network calibration the collective solo costs were priced with.
    pub net_calib: NetCalib,
    /// The originating scenario as compact JSON, when the recording was
    /// made through the scenario spec. Opaque to this crate (the spec
    /// lives in the `scenario` crate, which depends on this one);
    /// recordings made before the field existed parse as `None`.
    pub scenario: Option<String>,
}

impl Default for RecordMeta {
    fn default() -> Self {
        Self {
            version: 1,
            label: String::new(),
            gpus: 4,
            mps: true,
            schedule: SchedulePolicyKind::Auto,
            overlap_transfers: false,
            total_ranks: 1,
            work_scale: 1.0,
            live_wall_seconds: 0.0,
            node_calib: NodeCalib::default(),
            net_calib: NetCalib::default(),
            scenario: None,
        }
    }
}

/// A recorded workload: meta plus one [`RankTrace`] per rank per node
/// (segments and peak device bytes only — span events are a live-run
/// observability artifact and are not part of the charge record).
#[derive(Debug, Clone)]
pub struct RecordedWorkload {
    pub meta: RecordMeta,
    /// One `Vec<RankTrace>` per node, node-major like the engine.
    pub nodes: Vec<Vec<RankTrace>>,
}

/// What loading or parsing a recorded workload can fail with.
#[derive(Debug)]
pub enum WhatifError {
    /// Reading the file failed.
    Io(io::Error),
    /// A line did not parse; `line` is 1-based.
    Parse { line: usize, msg: String },
}

impl fmt::Display for WhatifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhatifError::Io(e) => write!(f, "cannot read workload: {e}"),
            WhatifError::Parse { line, msg } => {
                write!(f, "malformed workload line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for WhatifError {}

impl From<io::Error> for WhatifError {
    fn from(e: io::Error) -> Self {
        WhatifError::Io(e)
    }
}

/// What a replay produced: the engine's cluster accounting plus
/// per-label solo-estimate stats under the replay calibration (the rows
/// of the side-by-side report).
#[derive(Debug, Clone)]
pub struct Replayed {
    pub cluster: ClusterResult,
    pub per_label: BTreeMap<String, LabelStats>,
}

/// A named calibration preset for repricing, defined at paper scale.
#[derive(Debug, Clone, Copy)]
pub struct WhatifCalib {
    /// CLI name.
    pub name: &'static str,
    /// One-line description for `--help`-style listings.
    pub about: &'static str,
    /// Node calibration (rescale by the recording's `work_scale` before
    /// replaying).
    pub node: NodeCalib,
    /// Network calibration.
    pub net: NetCalib,
}

/// The preset registry. `identity` is deliberately absent: it means "use
/// the recorded calibration" and is resolved by the caller.
pub fn presets() -> Vec<WhatifCalib> {
    let a100 = NodeCalib::default();
    let h100 = NodeCalib {
        gpu: DeviceCalib::h100(),
        ..a100
    };
    let nvlink = |mut c: NodeCalib| {
        c.gpu = c.gpu.with_nvlink_host_link();
        c
    };
    vec![
        WhatifCalib {
            name: "a100",
            about: "the paper's machine: A100 40 GB, PCIe gen4, Slingshot-10",
            node: a100,
            net: NetCalib::slingshot10(),
        },
        WhatifCalib {
            name: "h100",
            about: "H100-SXM-like GPU (3.5x FP64, 2.2x HBM, 80 GB), PCIe gen5",
            node: h100,
            net: NetCalib::slingshot10(),
        },
        WhatifCalib {
            name: "a100-nvlink",
            about: "A100 with an NVLink-like host link instead of PCIe",
            node: nvlink(a100),
            net: NetCalib::slingshot10(),
        },
        WhatifCalib {
            name: "h100-nvlink",
            about: "H100-like GPU and an NVLink-like host link",
            node: nvlink(h100),
            net: NetCalib::slingshot10(),
        },
        WhatifCalib {
            name: "slingshot11",
            about: "the paper's node with Slingshot-11 NICs (2x injection bw)",
            node: a100,
            net: NetCalib::slingshot11(),
        },
    ]
}

/// A `--calib` name that resolves to no preset. The `Display` form lists
/// every valid name so a CLI can surface it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPreset {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = presets().iter().map(|p| p.name).collect();
        write!(
            f,
            "unknown calibration preset '{}'; valid presets: {} (or 'identity' for the recorded calibration)",
            self.name,
            names.join(", ")
        )
    }
}

impl std::error::Error for UnknownPreset {}

/// Look up a preset by CLI name; the error names every valid preset.
pub fn preset(name: &str) -> Result<WhatifCalib, UnknownPreset> {
    presets()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| UnknownPreset {
            name: name.to_string(),
        })
}

/// Per-label solo-estimate stats for a set of rank traces under an
/// arbitrary calibration — the same accounting [`crate::Context`] keeps
/// while recording (kernels: solo wall + dispatch + launch latency;
/// transfers: PCIe time; host/alloc/collective: their seconds), so
/// live-run stats and repriced stats are directly comparable.
pub fn solo_label_stats(
    nodes: &[Vec<RankTrace>],
    calib: &NodeCalib,
) -> BTreeMap<String, LabelStats> {
    let mut out: BTreeMap<String, LabelStats> = BTreeMap::new();
    let mut add = |label: &str, seconds: f64, bytes: f64| {
        let e = out.entry(label.to_string()).or_default();
        e.calls += 1;
        e.seconds += seconds;
        e.bytes += bytes;
    };
    for trace in nodes.iter().flatten() {
        for seg in &trace.segments {
            match seg {
                Segment::Host { seconds, label } => add(label, *seconds, 0.0),
                Segment::Kernel { profile, dispatch } => add(
                    &profile.name,
                    profile.solo_seconds(&calib.gpu) + dispatch + calib.gpu.launch_latency,
                    0.0,
                ),
                Segment::Transfer { bytes, label, .. } => add(
                    label,
                    calib.gpu.pcie_latency + bytes / calib.gpu.pcie_bw,
                    *bytes,
                ),
                Segment::DeviceAlloc { seconds } => add("accel_data_alloc", *seconds, 0.0),
                Segment::Collective {
                    seconds,
                    bytes,
                    label,
                } => add(label, *seconds, *bytes),
            }
        }
    }
    out
}

impl RecordedWorkload {
    /// Capture a workload from live rank traces, stripping the span
    /// events (the segment list *is* the charge record).
    pub fn capture(node_traces: Vec<Vec<RankTrace>>, meta: RecordMeta) -> Self {
        let nodes = node_traces
            .into_iter()
            .map(|ranks| {
                ranks
                    .into_iter()
                    .map(|t| RankTrace {
                        segments: t.segments,
                        events: Vec::new(),
                        peak_device_bytes: t.peak_device_bytes,
                    })
                    .collect()
            })
            .collect();
        Self { meta, nodes }
    }

    /// Re-express every recorded charge under a new calibration.
    ///
    /// Kernel and transfer segments carry pure work descriptors (items,
    /// flops, bytes) — the engine prices them from `NodeConfig.calib` at
    /// replay time, so they pass through unchanged. Three charges were
    /// priced at record time and are rescaled here:
    ///
    /// * **host seconds** by the CPU throughput ratio (host work is
    ///   modelled compute-bound on the host cores);
    /// * **allocation latency** by the allocator-latency ratio;
    /// * **collective solo cost** by the ratio of the analytic allreduce
    ///   formula under the new vs recorded [`NetCalib`] (exact because
    ///   the recorded cost is that formula times a scale factor).
    ///
    /// Kernel `dispatch` is a framework overhead, not a hardware cost,
    /// and is preserved. Under the identity calibration every ratio is
    /// exactly 1.0, so repricing is bitwise lossless.
    pub fn reprice(&self, node: &NodeCalib, net: &NetCalib) -> Vec<Vec<RankTrace>> {
        let old = &self.meta.node_calib;
        let host_ratio = old.cpu.core_flops / node.cpu.core_flops;
        let alloc_ratio = if old.gpu.alloc_latency > 0.0 {
            node.gpu.alloc_latency / old.gpu.alloc_latency
        } else {
            1.0
        };
        let ranks = self.meta.total_ranks;
        self.nodes
            .iter()
            .map(|ranks_of_node| {
                ranks_of_node
                    .iter()
                    .map(|t| RankTrace {
                        segments: t
                            .segments
                            .iter()
                            .map(|seg| match seg {
                                Segment::Host { seconds, label } => Segment::Host {
                                    seconds: seconds * host_ratio,
                                    label: label.clone(),
                                },
                                Segment::DeviceAlloc { seconds } => Segment::DeviceAlloc {
                                    seconds: seconds * alloc_ratio,
                                },
                                Segment::Collective {
                                    seconds,
                                    bytes,
                                    label,
                                } => {
                                    let was =
                                        allreduce_seconds(&self.meta.net_calib, ranks, *bytes);
                                    let now = allreduce_seconds(net, ranks, *bytes);
                                    let ratio = if was > 0.0 { now / was } else { 1.0 };
                                    Segment::Collective {
                                        seconds: seconds * ratio,
                                        bytes: *bytes,
                                        label: label.clone(),
                                    }
                                }
                                other => other.clone(),
                            })
                            .collect(),
                        events: Vec::new(),
                        peak_device_bytes: t.peak_device_bytes,
                    })
                    .collect()
            })
            .collect()
    }

    /// Reprice and replay through the discrete-event engine under the
    /// given calibration. `gpus` overrides the recorded per-node GPU
    /// count (a "what if the node had 8 GPUs" knob); `None` keeps it.
    /// No kernel numerics run — only the recorded charges are replayed.
    pub fn replay(
        &self,
        node: &NodeCalib,
        net: &NetCalib,
        gpus: Option<u32>,
    ) -> Result<Replayed, EngineError> {
        let repriced = self.reprice(node, net);
        let cfg = NodeConfig {
            calib: *node,
            gpus: gpus.unwrap_or(self.meta.gpus),
            mps: self.meta.mps,
            schedule: self.meta.schedule,
            overlap_transfers: self.meta.overlap_transfers,
        };
        let cluster = simulate_cluster(&repriced, &cfg)?;
        let per_label = solo_label_stats(&repriced, node);
        Ok(Replayed { cluster, per_label })
    }

    /// Replay under the recorded calibration — the differential oracle:
    /// the result must reproduce the live run exactly.
    pub fn replay_identity(&self) -> Result<Replayed, EngineError> {
        let node = self.meta.node_calib;
        let net = self.meta.net_calib;
        self.replay(&node, &net, None)
    }

    /// Per-label solo stats of the recording under its own calibration
    /// (the "original" column of a side-by-side report).
    pub fn live_label_stats(&self) -> BTreeMap<String, LabelStats> {
        solo_label_stats(&self.nodes, &self.meta.node_calib)
    }

    /// Serialize to the JSONL workload format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        write_meta(&self.meta, &mut out);
        for (n, ranks) in self.nodes.iter().enumerate() {
            for (r, trace) in ranks.iter().enumerate() {
                out.push_str(&format!(
                    "{{\"type\":\"rank\",\"node\":{n},\"rank\":{r},\"peak_device_bytes\":{}}}\n",
                    trace.peak_device_bytes
                ));
                for seg in &trace.segments {
                    write_segment(n, r, seg, &mut out);
                }
            }
        }
        out
    }

    /// Parse the JSONL workload format.
    pub fn parse_jsonl(text: &str) -> Result<Self, WhatifError> {
        let mut meta: Option<RecordMeta> = None;
        let mut nodes: Vec<Vec<RankTrace>> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let ln = i + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let ty = str_field(line, "type")
                .ok_or_else(|| parse_err(ln, "missing string field 'type'"))?;
            match ty.as_str() {
                "meta" => {
                    if meta.is_some() {
                        return Err(parse_err(ln, "duplicate meta line"));
                    }
                    meta = Some(parse_meta(line, ln)?);
                }
                "rank" => {
                    if meta.is_none() {
                        return Err(parse_err(ln, "rank line before meta"));
                    }
                    let node: usize = int_field(line, "node", ln)?;
                    let rank: usize = int_field(line, "rank", ln)?;
                    if node > nodes.len() {
                        return Err(parse_err(ln, format!("node {node} declared out of order")));
                    }
                    if node == nodes.len() {
                        nodes.push(Vec::new());
                    }
                    if rank != nodes[node].len() {
                        return Err(parse_err(
                            ln,
                            format!("rank {rank} of node {node} declared out of order"),
                        ));
                    }
                    nodes[node].push(RankTrace {
                        peak_device_bytes: int_field(line, "peak_device_bytes", ln)?,
                        ..RankTrace::default()
                    });
                }
                "seg" => {
                    let node: usize = int_field(line, "node", ln)?;
                    let rank: usize = int_field(line, "rank", ln)?;
                    let trace = nodes
                        .get_mut(node)
                        .and_then(|n| n.get_mut(rank))
                        .ok_or_else(|| {
                            parse_err(ln, format!("segment for undeclared rank {node}/{rank}"))
                        })?;
                    trace.segments.push(parse_segment(line, ln)?);
                }
                other => return Err(parse_err(ln, format!("unknown line type '{other}'"))),
            }
        }
        let meta = meta.ok_or_else(|| parse_err(text.lines().count() + 1, "no meta line"))?;
        Ok(Self { meta, nodes })
    }

    /// Write the workload to `path` as JSONL.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        fs::write(path, self.to_jsonl())
    }

    /// Read a workload back from `path`.
    pub fn read(path: &Path) -> Result<Self, WhatifError> {
        Self::parse_jsonl(&fs::read_to_string(path)?)
    }

    /// Total ranks actually present in the recording (Σ per node).
    pub fn rank_count(&self) -> usize {
        self.nodes.iter().map(|n| n.len()).sum()
    }
}

pub(crate) fn parse_err(line: usize, msg: impl Into<String>) -> WhatifError {
    WhatifError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Minimal JSON string escape (labels are plain identifiers, but quotes
/// and backslashes must survive). Shared with the sweep's JSONL writer.
pub(crate) fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// `{:?}` on f64 is the shortest representation that parses back to the
/// identical bits — the property the lossless round-trip test locks.
/// Shared with the sweep's JSONL writer.
pub(crate) fn num(v: f64) -> String {
    format!("{v:?}")
}

fn write_meta(m: &RecordMeta, out: &mut String) {
    let nc = &m.node_calib;
    let (c, g, f, n) = (&nc.cpu, &nc.gpu, &nc.framework, &m.net_calib);
    out.push_str(&format!(
        concat!(
            "{{\"type\":\"meta\",\"version\":{},\"label\":\"{}\",\"gpus\":{},\"mps\":{},",
            "\"schedule\":\"{}\",\"overlap_transfers\":{},\"total_ranks\":{},",
            "\"work_scale\":{},\"live_wall_seconds\":{},",
            "\"cpu.cores\":{},\"cpu.core_flops\":{},\"cpu.socket_bw\":{},",
            "\"cpu.mem_bytes\":{},\"cpu.thread_overhead\":{},",
            "\"gpu.fp64_peak\":{},\"gpu.hbm_bw\":{},\"gpu.mem_bytes\":{},",
            "\"gpu.launch_latency\":{},\"gpu.saturation_items\":{},\"gpu.pcie_bw\":{},",
            "\"gpu.pcie_latency\":{},\"gpu.context_switch\":{},\"gpu.mps_crowding\":{},",
            "\"gpu.alloc_latency\":{},",
            "\"fw.jit_dispatch\":{},\"fw.jit_compile\":{},\"fw.omp_region\":{},",
            "\"fw.jit_mem_overhead\":{},\"fw.jit_process_device_bytes\":{},",
            "\"fw.omp_process_device_bytes\":{},\"fw.jit_runtime_factor\":{},",
            "\"fw.jit_cpu_backend_eff\":{},",
            "\"net.bw\":{},\"net.latency\":{}",
        ),
        m.version,
        esc(&m.label),
        m.gpus,
        m.mps,
        m.schedule,
        m.overlap_transfers,
        m.total_ranks,
        num(m.work_scale),
        num(m.live_wall_seconds),
        c.cores,
        num(c.core_flops),
        num(c.socket_bw),
        c.mem_bytes,
        num(c.thread_overhead),
        num(g.fp64_peak),
        num(g.hbm_bw),
        g.mem_bytes,
        num(g.launch_latency),
        num(g.saturation_items),
        num(g.pcie_bw),
        num(g.pcie_latency),
        num(g.context_switch),
        num(g.mps_crowding),
        num(g.alloc_latency),
        num(f.jit_dispatch),
        num(f.jit_compile),
        num(f.omp_region),
        num(f.jit_mem_overhead),
        num(f.jit_process_device_bytes),
        num(f.omp_process_device_bytes),
        num(f.jit_runtime_factor),
        num(f.jit_cpu_backend_eff),
        num(n.bw),
        num(n.latency),
    ));
    // Optional trailing field so pre-scenario recordings keep parsing
    // (and writing `None` reproduces their byte layout exactly).
    if let Some(s) = &m.scenario {
        out.push_str(&format!(",\"scenario\":\"{}\"", esc(s)));
    }
    out.push_str("}\n");
}

fn write_segment(node: usize, rank: usize, seg: &Segment, out: &mut String) {
    let head = format!("{{\"type\":\"seg\",\"node\":{node},\"rank\":{rank}");
    match seg {
        Segment::Host { seconds, label } => out.push_str(&format!(
            "{head},\"kind\":\"host\",\"seconds\":{},\"label\":\"{}\"}}\n",
            num(*seconds),
            esc(label)
        )),
        Segment::Kernel { profile, dispatch } => out.push_str(&format!(
            concat!(
                "{},\"kind\":\"kernel\",\"name\":\"{}\",\"items\":{},",
                "\"flops_per_item\":{},\"bytes_per_item\":{},\"divergence\":{},",
                "\"dispatch\":{}}}\n",
            ),
            head,
            esc(&profile.name),
            num(profile.items),
            num(profile.flops_per_item),
            num(profile.bytes_per_item),
            num(profile.divergence),
            num(*dispatch),
        )),
        Segment::Transfer { bytes, dir, label } => out.push_str(&format!(
            "{head},\"kind\":\"transfer\",\"bytes\":{},\"dir\":\"{}\",\"label\":\"{}\"}}\n",
            num(*bytes),
            match dir {
                TransferDir::HostToDevice => "h2d",
                TransferDir::DeviceToHost => "d2h",
            },
            esc(label)
        )),
        Segment::DeviceAlloc { seconds } => out.push_str(&format!(
            "{head},\"kind\":\"alloc\",\"seconds\":{}}}\n",
            num(*seconds)
        )),
        Segment::Collective {
            seconds,
            bytes,
            label,
        } => out.push_str(&format!(
            "{head},\"kind\":\"collective\",\"seconds\":{},\"bytes\":{},\"label\":\"{}\"}}\n",
            num(*seconds),
            num(*bytes),
            esc(label)
        )),
    }
}

/// Pull a `"field":"value"` string out of one JSON line (unescaping).
/// Shared with the sweep's checkpoint reader.
pub(crate) fn str_field(line: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\":\"");
    let start = line.find(&key)? + key.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Pull a `"field":number` out of one JSON line.
pub(crate) fn raw_num_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let key = format!("\"{field}\":");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(&rest[..end])
}

pub(crate) fn num_field(line: &str, field: &str, ln: usize) -> Result<f64, WhatifError> {
    raw_num_field(line, field)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(ln, format!("missing or invalid numeric field '{field}'")))
}

pub(crate) fn int_field<T: std::str::FromStr>(
    line: &str,
    field: &str,
    ln: usize,
) -> Result<T, WhatifError> {
    raw_num_field(line, field)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(ln, format!("missing or invalid integer field '{field}'")))
}

pub(crate) fn bool_field(line: &str, field: &str, ln: usize) -> Result<bool, WhatifError> {
    let key = format!("\"{field}\":");
    let start = line
        .find(&key)
        .ok_or_else(|| parse_err(ln, format!("missing boolean field '{field}'")))?
        + key.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Ok(true)
    } else if rest.starts_with("false") {
        Ok(false)
    } else {
        Err(parse_err(ln, format!("invalid boolean field '{field}'")))
    }
}

fn req_str(line: &str, field: &str, ln: usize) -> Result<String, WhatifError> {
    str_field(line, field).ok_or_else(|| parse_err(ln, format!("missing string field '{field}'")))
}

fn parse_meta(line: &str, ln: usize) -> Result<RecordMeta, WhatifError> {
    let version: u32 = int_field(line, "version", ln)?;
    if version != 1 {
        return Err(parse_err(ln, format!("unsupported version {version}")));
    }
    let schedule: SchedulePolicyKind = req_str(line, "schedule", ln)?
        .parse()
        .map_err(|e: String| parse_err(ln, e))?;
    Ok(RecordMeta {
        version,
        label: req_str(line, "label", ln)?,
        gpus: int_field(line, "gpus", ln)?,
        mps: bool_field(line, "mps", ln)?,
        schedule,
        overlap_transfers: bool_field(line, "overlap_transfers", ln)?,
        total_ranks: int_field(line, "total_ranks", ln)?,
        work_scale: num_field(line, "work_scale", ln)?,
        live_wall_seconds: num_field(line, "live_wall_seconds", ln)?,
        node_calib: NodeCalib {
            cpu: crate::calib::CpuCalib {
                cores: int_field(line, "cpu.cores", ln)?,
                core_flops: num_field(line, "cpu.core_flops", ln)?,
                socket_bw: num_field(line, "cpu.socket_bw", ln)?,
                mem_bytes: int_field(line, "cpu.mem_bytes", ln)?,
                thread_overhead: num_field(line, "cpu.thread_overhead", ln)?,
            },
            gpu: DeviceCalib {
                fp64_peak: num_field(line, "gpu.fp64_peak", ln)?,
                hbm_bw: num_field(line, "gpu.hbm_bw", ln)?,
                mem_bytes: int_field(line, "gpu.mem_bytes", ln)?,
                launch_latency: num_field(line, "gpu.launch_latency", ln)?,
                saturation_items: num_field(line, "gpu.saturation_items", ln)?,
                pcie_bw: num_field(line, "gpu.pcie_bw", ln)?,
                pcie_latency: num_field(line, "gpu.pcie_latency", ln)?,
                context_switch: num_field(line, "gpu.context_switch", ln)?,
                mps_crowding: num_field(line, "gpu.mps_crowding", ln)?,
                alloc_latency: num_field(line, "gpu.alloc_latency", ln)?,
            },
            framework: crate::calib::FrameworkCalib {
                jit_dispatch: num_field(line, "fw.jit_dispatch", ln)?,
                jit_compile: num_field(line, "fw.jit_compile", ln)?,
                omp_region: num_field(line, "fw.omp_region", ln)?,
                jit_mem_overhead: num_field(line, "fw.jit_mem_overhead", ln)?,
                jit_process_device_bytes: num_field(line, "fw.jit_process_device_bytes", ln)?,
                omp_process_device_bytes: num_field(line, "fw.omp_process_device_bytes", ln)?,
                jit_runtime_factor: num_field(line, "fw.jit_runtime_factor", ln)?,
                jit_cpu_backend_eff: num_field(line, "fw.jit_cpu_backend_eff", ln)?,
            },
        },
        net_calib: NetCalib {
            bw: num_field(line, "net.bw", ln)?,
            latency: num_field(line, "net.latency", ln)?,
        },
        scenario: str_field(line, "scenario"),
    })
}

fn parse_segment(line: &str, ln: usize) -> Result<Segment, WhatifError> {
    let kind = req_str(line, "kind", ln)?;
    match kind.as_str() {
        "host" => Ok(Segment::Host {
            seconds: num_field(line, "seconds", ln)?,
            label: req_str(line, "label", ln)?,
        }),
        "kernel" => Ok(Segment::Kernel {
            profile: KernelProfile {
                name: req_str(line, "name", ln)?,
                items: num_field(line, "items", ln)?,
                flops_per_item: num_field(line, "flops_per_item", ln)?,
                bytes_per_item: num_field(line, "bytes_per_item", ln)?,
                divergence: num_field(line, "divergence", ln)?,
            },
            dispatch: num_field(line, "dispatch", ln)?,
        }),
        "transfer" => Ok(Segment::Transfer {
            bytes: num_field(line, "bytes", ln)?,
            dir: match req_str(line, "dir", ln)?.as_str() {
                "h2d" => TransferDir::HostToDevice,
                "d2h" => TransferDir::DeviceToHost,
                other => {
                    return Err(parse_err(ln, format!("unknown transfer dir '{other}'")));
                }
            },
            label: req_str(line, "label", ln)?,
        }),
        "alloc" => Ok(Segment::DeviceAlloc {
            seconds: num_field(line, "seconds", ln)?,
        }),
        "collective" => Ok(Segment::Collective {
            seconds: num_field(line, "seconds", ln)?,
            bytes: num_field(line, "bytes", ln)?,
            label: req_str(line, "label", ln)?,
        }),
        other => Err(parse_err(ln, format!("unknown segment kind '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_workload() -> RecordedWorkload {
        let k = KernelProfile {
            name: "scan\"map".into(), // exercise escaping
            items: 12345.0,
            flops_per_item: 40.5,
            bytes_per_item: 8.0,
            divergence: 1.25,
        };
        let mk = |f: f64| RankTrace {
            segments: vec![
                Segment::Host {
                    seconds: 0.01 * f,
                    label: "serial".into(),
                },
                Segment::Kernel {
                    profile: k.clone(),
                    dispatch: 1e-5,
                },
                Segment::Transfer {
                    bytes: 1e8 * f,
                    dir: TransferDir::HostToDevice,
                    label: "accel_data_update_device".into(),
                },
                Segment::DeviceAlloc { seconds: 1e-4 },
                Segment::Collective {
                    seconds: 2e-3,
                    bytes: 1e6,
                    label: "mpi_allreduce_zmap".into(),
                },
            ],
            events: Vec::new(),
            peak_device_bytes: (1e9 * f) as u64,
        };
        RecordedWorkload {
            meta: RecordMeta {
                label: "test workload".into(),
                total_ranks: 4,
                ..RecordMeta::default()
            },
            nodes: vec![vec![mk(1.0), mk(1.5)], vec![mk(1.0), mk(1.5)]],
        }
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let w = sample_workload();
        let text = w.to_jsonl();
        let parsed = RecordedWorkload::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.meta, w.meta);
        assert_eq!(parsed.nodes.len(), w.nodes.len());
        for (a, b) in parsed.nodes.iter().flatten().zip(w.nodes.iter().flatten()) {
            assert_eq!(a.segments, b.segments);
            assert_eq!(a.peak_device_bytes, b.peak_device_bytes);
        }
        // Re-serialization is byte-identical.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn embedded_scenario_round_trips_and_stays_optional() {
        let mut w = sample_workload();
        // Without a scenario the meta line has no trailing field at all
        // (old recordings' byte layout).
        assert!(!w.to_jsonl().lines().next().unwrap().contains("scenario"));
        // With one — including the quotes and backslashes compact JSON is
        // full of — the embedding survives a lossless round trip.
        w.meta.scenario = Some("{\"schema_version\":1,\"name\":\"a \\\"b\\\\\"}".to_string());
        let text = w.to_jsonl();
        let parsed = RecordedWorkload::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.meta.scenario, w.meta.scenario);
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn file_round_trip() {
        let w = sample_workload();
        let path = std::env::temp_dir().join("whatif_roundtrip.jsonl");
        w.write(&path).unwrap();
        let r = RecordedWorkload::read(&path).unwrap();
        assert_eq!(r.meta, w.meta);
        assert_eq!(r.rank_count(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let w = sample_workload();
        let mut lines: Vec<String> = w.to_jsonl().lines().map(String::from).collect();
        // Corrupt a segment's numeric field.
        let seg_idx = lines
            .iter()
            .position(|l| l.contains("\"kind\":\"host\""))
            .unwrap();
        lines[seg_idx] = lines[seg_idx].replace("\"seconds\":", "\"seconds\":oops");
        let err = RecordedWorkload::parse_jsonl(&lines.join("\n")).unwrap_err();
        match err {
            WhatifError::Parse { line, ref msg } => {
                assert_eq!(line, seg_idx + 1);
                assert!(msg.contains("seconds"), "{msg}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Unknown line type.
        let err = RecordedWorkload::parse_jsonl("{\"type\":\"mystery\"}").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        // Segment for a rank never declared.
        let bad = format!(
            "{}{}",
            sample_workload().to_jsonl().lines().next().unwrap(),
            "\n{\"type\":\"seg\",\"node\":9,\"rank\":0,\"kind\":\"alloc\",\"seconds\":1.0}\n"
        );
        assert!(matches!(
            RecordedWorkload::parse_jsonl(&bad),
            Err(WhatifError::Parse { line: 2, .. })
        ));
        // Missing meta entirely.
        assert!(RecordedWorkload::parse_jsonl("").is_err());
    }

    #[test]
    fn identity_reprice_is_bitwise_lossless() {
        let w = sample_workload();
        let repriced = w.reprice(&w.meta.node_calib, &w.meta.net_calib);
        for (a, b) in repriced.iter().flatten().zip(w.nodes.iter().flatten()) {
            assert_eq!(a.segments, b.segments);
        }
    }

    #[test]
    fn reprice_rescales_host_alloc_and_collective() {
        let w = sample_workload();
        let mut fast = w.meta.node_calib;
        fast.cpu.core_flops *= 2.0;
        fast.gpu.alloc_latency *= 0.5;
        let net = NetCalib {
            bw: w.meta.net_calib.bw * 2.0,
            latency: w.meta.net_calib.latency,
        };
        let repriced = w.reprice(&fast, &net);
        let orig = &w.nodes[0][0].segments;
        let new = &repriced[0][0].segments;
        match (&orig[0], &new[0]) {
            (Segment::Host { seconds: a, .. }, Segment::Host { seconds: b, .. }) => {
                assert!((b - a / 2.0).abs() < 1e-15, "host {b} vs {}", a / 2.0);
            }
            _ => panic!("expected host segments"),
        }
        // Kernel and transfer descriptors pass through untouched.
        assert_eq!(orig[1], new[1]);
        assert_eq!(orig[2], new[2]);
        match (&orig[3], &new[3]) {
            (Segment::DeviceAlloc { seconds: a }, Segment::DeviceAlloc { seconds: b }) => {
                assert!((b - a * 0.5).abs() < 1e-18);
            }
            _ => panic!("expected alloc segments"),
        }
        match (&orig[4], &new[4]) {
            (Segment::Collective { seconds: a, .. }, Segment::Collective { seconds: b, .. }) => {
                // Doubling net bandwidth shrinks but does not halve the
                // cost (the latency term is unchanged).
                assert!(b < a && *b > a / 2.0, "collective {b} vs {a}");
            }
            _ => panic!("expected collective segments"),
        }
    }

    #[test]
    fn replay_prices_recorded_charges_only() {
        let w = sample_workload();
        let id = w.replay_identity().unwrap();
        assert!(id.cluster.wall_seconds > 0.0);
        assert_eq!(id.cluster.nodes, 2);
        // Per-label stats match the live accounting under the same calib.
        let live = w.live_label_stats();
        for (label, stat) in &id.per_label {
            assert_eq!(live[label], *stat, "{label}");
        }
        // An H100-like device never slows the kernel's solo estimate.
        let h100 = preset("h100").unwrap();
        let rep = w.replay(&h100.node, &h100.net, None).unwrap();
        assert!(rep.per_label["scan\"map"].seconds <= live["scan\"map"].seconds);
    }

    #[test]
    fn gpu_count_override_reaches_the_engine() {
        let w = sample_workload();
        let one = w
            .replay(&w.meta.node_calib, &w.meta.net_calib, Some(1))
            .unwrap();
        // 2 ranks squeezed onto 1 GPU can only be slower or equal.
        let four = w
            .replay(&w.meta.node_calib, &w.meta.net_calib, Some(4))
            .unwrap();
        assert!(one.cluster.wall_seconds >= four.cluster.wall_seconds);
        assert_eq!(one.cluster.gpu_busy.len(), 2); // 1 GPU x 2 nodes
        assert_eq!(four.cluster.gpu_busy.len(), 8);
    }

    #[test]
    fn presets_resolve_by_name() {
        for p in presets() {
            assert_eq!(preset(p.name).unwrap().name, p.name);
            assert!(!p.about.is_empty());
        }
        // `identity` is resolved by callers, not the registry; the typed
        // error says so and lists every valid preset.
        let err = preset("identity").unwrap_err();
        assert_eq!(err.name, "identity");
        assert!(err.to_string().contains("recorded calibration"), "{err}");
        let err = preset("nope").unwrap_err();
        for p in presets() {
            assert!(err.to_string().contains(p.name), "{err} missing {}", p.name);
        }
        assert_eq!(preset("h100").unwrap().node.gpu, DeviceCalib::h100());
    }
}
