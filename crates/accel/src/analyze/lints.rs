//! Pass 4 — layout and calibration lints.
//!
//! Best-effort warnings about descriptions that replay fine but almost
//! certainly do not mean what they say (idle devices, MPS-less
//! oversubscription, overlap with nothing to overlap), plus the
//! calibration gate: a [`crate::calib::CalibError`] from
//! [`NodeCalib::validate`]/[`NetCalib::validate`] becomes an
//! admission-blocking `S005` naming the offending field.

use crate::calib::{NetCalib, NodeCalib};
use crate::trace::{RankTrace, Segment};

use super::diag::{Code, Diagnostic, Locus};

/// Layout lints over a recorded workload's node/rank structure.
pub(crate) fn layout_lints(
    nodes: &[Vec<RankTrace>],
    gpus: u32,
    mps: bool,
    overlap: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let gpus = gpus.max(1);
    let max_ranks = nodes.iter().map(|n| n.len()).max().unwrap_or(0) as u32;
    if max_ranks > 0 && gpus > max_ranks {
        out.push(
            Diagnostic::warn(
                Code::IdleGpus,
                Locus::default(),
                format!(
                    "{gpus} GPU(s) per node but at most {max_ranks} rank(s): {} device(s) per node are provably idle",
                    gpus - max_ranks
                ),
            )
            .with_suggestion("lower gpus-per-node or add ranks"),
        );
    }
    if !mps && max_ranks > gpus {
        out.push(
            Diagnostic::warn(
                Code::OversubscribedNoMps,
                Locus::default(),
                format!(
                    "{max_ranks} rank(s) share {gpus} GPU(s) without MPS: the driver time-slices whole contexts and every switch pays the full context-switch cost (paper § 3.1.2)",
                ),
            )
            .with_suggestion("enable mps, or run at most one rank per GPU"),
        );
    }
    if overlap {
        let any_transfer = nodes
            .iter()
            .flatten()
            .flat_map(|t| &t.segments)
            .any(|s| matches!(s, Segment::Transfer { .. }));
        if !any_transfer {
            out.push(Diagnostic::warn(
                Code::OverlapWithoutTransfers,
                Locus::default(),
                "transfer overlap is enabled but the workload contains no transfer segments; the flag cannot change the result".to_string(),
            ));
        }
    }
    out
}

/// The calibration gate: degenerate rooflines are admission errors.
pub(crate) fn calib_lints(node: &NodeCalib, net: &NetCalib) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if let Err(e) = node.validate() {
        out.push(
            Diagnostic::error(Code::DegenerateCalib, Locus::field(e.field), e.to_string())
                .with_suggestion("fix the calibration before replaying; see CalibError"),
        );
    }
    if let Err(e) = net.validate() {
        out.push(
            Diagnostic::error(Code::DegenerateCalib, Locus::field(e.field), e.to_string())
                .with_suggestion("fix the calibration before replaying; see CalibError"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks(n: usize) -> Vec<Vec<RankTrace>> {
        vec![vec![RankTrace::default(); n]]
    }

    #[test]
    fn balanced_layouts_are_quiet() {
        assert!(layout_lints(&ranks(4), 4, true, false).is_empty());
        assert!(layout_lints(&ranks(8), 4, true, false).is_empty());
    }

    #[test]
    fn idle_devices_and_mpsless_oversubscription_warn() {
        let diags = layout_lints(&ranks(2), 4, true, false);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::IdleGpus);
        assert!(diags[0].message.contains("2 device(s)"));

        let diags = layout_lints(&ranks(8), 4, false, false);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::OversubscribedNoMps);
    }

    #[test]
    fn overlap_without_transfers_warns() {
        let diags = layout_lints(&ranks(4), 4, true, true);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::OverlapWithoutTransfers);
        let with_transfer = vec![vec![RankTrace {
            segments: vec![Segment::Transfer {
                bytes: 1e6,
                dir: crate::trace::TransferDir::HostToDevice,
                label: "h2d".into(),
            }],
            ..RankTrace::default()
        }]];
        assert!(layout_lints(&with_transfer, 1, true, true).is_empty());
    }

    #[test]
    fn degenerate_calibration_is_an_error_naming_the_field() {
        let mut node = NodeCalib::default();
        node.gpu.hbm_bw = -1.0;
        let diags = calib_lints(&node, &NetCalib::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DegenerateCalib);
        assert_eq!(diags[0].severity, super::super::Severity::Error);
        assert_eq!(diags[0].locus.field.as_deref(), Some("gpu.hbm_bw"));
        assert!(calib_lints(&NodeCalib::default(), &NetCalib::default()).is_empty());
    }
}
