//! Pass 3 — cost sanity.
//!
//! Two layers, subsuming the engine's runtime charge validation so a
//! replay can no longer be the first place a malformed charge is
//! noticed:
//!
//! 1. **Recorded charges** ([`raw_cost_pass`]): every numeric field of
//!    every segment is checked finite, walking ranks and fields in the
//!    same order as the compile pass, so the first `C001` names exactly
//!    the segment a replay's `NonFiniteCharge` would. Unlike compile,
//!    the walk continues after the first finding and also flags
//!    replayable-but-degenerate values: negative magnitudes (`C002`,
//!    priced as instant no-ops), kernels launched over zero work items
//!    (`C003`), and — when transfer streams overlap — transfers whose
//!    priced link time can reach zero, making the completion race its
//!    own enqueue (`C004`).
//! 2. **Derived costs** ([`derived_cost_check`]): the per-calibration
//!    cost table is materialized exactly as a replay would (same code
//!    path), so a calibration that turns a finite recording into a
//!    non-finite kernel/transfer cost is caught at lint time with the
//!    same locus the engine would report.

use crate::calib::DeviceCalib;
use crate::engine::error::EngineError;
use crate::engine::sim::{CompiledWorkload, Reprice};
use crate::trace::{RankTrace, Segment};

use super::diag::{Code, Diagnostic, Locus};

fn non_finite(rank: usize, segment: usize, label: &str, value: f64) -> Diagnostic {
    // Shared formatting path: the message is the runtime error's text.
    let err = EngineError::NonFiniteCharge {
        rank,
        segment,
        label: label.to_string(),
        value,
    };
    Diagnostic::error(
        Code::NonFiniteCharge,
        Locus::segment(rank, segment, label),
        err.to_string(),
    )
    .with_suggestion("the recording is corrupt; re-record the run")
}

fn negative(rank: usize, segment: usize, label: &str, what: &str, value: f64) -> Diagnostic {
    Diagnostic::warn(
        Code::NegativeCharge,
        Locus::segment(rank, segment, label),
        format!("rank {rank} segment {segment} ('{label}') records a negative {what} ({value}); the engine prices it as an instant no-op"),
    )
}

/// Push a `C001` for a non-finite value; true means the value is fine.
fn check_finite(
    out: &mut Vec<Diagnostic>,
    rank: usize,
    segment: usize,
    label: &str,
    value: f64,
) -> bool {
    if value.is_finite() {
        true
    } else {
        out.push(non_finite(rank, segment, label, value));
        false
    }
}

/// Scan every recorded charge (see module docs). `overlap` mirrors the
/// workload's `overlap_transfers` flag and gates the `C004` check.
pub(crate) fn raw_cost_pass(nodes: &[Vec<RankTrace>], overlap: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut rank = 0usize;
    for node in nodes {
        for trace in node {
            for (i, seg) in trace.segments.iter().enumerate() {
                let label = seg.label();
                let check = |out: &mut Vec<Diagnostic>, value: f64| {
                    check_finite(out, rank, i, label, value)
                };
                match seg {
                    Segment::Host { seconds, .. } | Segment::DeviceAlloc { seconds } => {
                        if check(&mut out, *seconds) && *seconds < 0.0 {
                            out.push(negative(rank, i, label, "duration", *seconds));
                        }
                    }
                    Segment::Kernel { profile, dispatch } => {
                        let fields = [
                            profile.items,
                            profile.flops_per_item,
                            profile.bytes_per_item,
                            profile.divergence,
                            *dispatch,
                        ];
                        let mut finite = true;
                        for f in fields {
                            finite &= check(&mut out, f);
                        }
                        if finite {
                            if profile.items <= 0.0 {
                                out.push(Diagnostic::warn(
                                    Code::EmptyKernelGrid,
                                    Locus::segment(rank, i, label),
                                    format!(
                                        "rank {rank} segment {i}: kernel '{label}' launches over {} work item(s); it completes instantly and only pays dispatch",
                                        profile.items
                                    ),
                                ));
                            }
                            for (what, v) in [
                                ("flops_per_item", profile.flops_per_item),
                                ("bytes_per_item", profile.bytes_per_item),
                                ("dispatch", *dispatch),
                            ] {
                                if v < 0.0 {
                                    out.push(negative(rank, i, label, what, v));
                                }
                            }
                        }
                    }
                    Segment::Transfer { bytes, .. } => {
                        if check(&mut out, *bytes) {
                            if *bytes < 0.0 {
                                out.push(negative(rank, i, label, "payload", *bytes));
                            }
                            if overlap && *bytes <= 0.0 {
                                out.push(Diagnostic::warn(
                                    Code::StreamUnderflowRisk,
                                    Locus::segment(rank, i, label),
                                    format!(
                                        "rank {rank} segment {i} ('{label}'): a {bytes}-byte transfer on an overlapped stream can complete at its own enqueue time; the stream accounting absorbs it, but the transfer does nothing",
                                    ),
                                ));
                            }
                        }
                    }
                    Segment::Collective { seconds, bytes, .. } => {
                        if check(&mut out, *seconds) && *seconds < 0.0 {
                            out.push(negative(rank, i, label, "duration", *seconds));
                        }
                        if check(&mut out, *bytes) && *bytes < 0.0 {
                            out.push(negative(rank, i, label, "payload", *bytes));
                        }
                    }
                }
            }
            rank += 1;
        }
    }
    out
}

/// Materialize the identity-repriced cost table under `gpu` — the exact
/// code path a replay prices with — and convert its error, if any, into
/// the matching `C001`. Only meaningful once [`raw_cost_pass`] found no
/// non-finite recorded charge (compile fails on those first, with the
/// same code).
pub(crate) fn derived_cost_check(
    nodes: &[Vec<RankTrace>],
    gpu: &DeviceCalib,
) -> Option<Diagnostic> {
    let slices: Vec<&[RankTrace]> = nodes.iter().map(|v| v.as_slice()).collect();
    let err = match CompiledWorkload::compile(&slices) {
        Ok(compiled) => compiled.cost_table(gpu, &Reprice::Identity).err()?,
        Err(e) => e,
    };
    let EngineError::NonFiniteCharge {
        rank,
        segment,
        ref label,
        ..
    } = err
    else {
        // compile/cost_table only raise NonFiniteCharge today; surface
        // anything new verbatim rather than silently dropping it.
        return Some(Diagnostic::error(
            Code::NonFiniteCharge,
            Locus::default(),
            err.to_string(),
        ));
    };
    Some(
        Diagnostic::error(
            Code::NonFiniteCharge,
            Locus::segment(rank, segment, label.clone()),
            err.to_string(),
        )
        .with_suggestion(
            "the recorded charge is finite but the calibration prices it non-finite; check the calibration's bandwidths and throughputs",
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelProfile;

    fn trace(segments: Vec<Segment>) -> Vec<Vec<RankTrace>> {
        vec![vec![RankTrace {
            segments,
            ..RankTrace::default()
        }]]
    }

    fn kernel(items: f64, dispatch: f64) -> Segment {
        Segment::Kernel {
            profile: KernelProfile {
                name: "k".into(),
                items,
                flops_per_item: 10.0,
                bytes_per_item: 8.0,
                divergence: 1.0,
            },
            dispatch,
        }
    }

    #[test]
    fn clean_traces_pass_silently() {
        let nodes = trace(vec![
            Segment::Host {
                seconds: 0.1,
                label: "h".into(),
            },
            kernel(1e6, 1e-5),
            Segment::Transfer {
                bytes: 1e6,
                dir: crate::trace::TransferDir::HostToDevice,
                label: "h2d".into(),
            },
        ]);
        assert!(raw_cost_pass(&nodes, true).is_empty());
        assert!(derived_cost_check(&nodes, &DeviceCalib::a100()).is_none());
    }

    #[test]
    fn non_finite_matches_the_runtime_error_text() {
        let nodes = trace(vec![Segment::Host {
            seconds: f64::NAN,
            label: "h".into(),
        }]);
        let diags = raw_cost_pass(&nodes, false);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::NonFiniteCharge);
        let expect = EngineError::NonFiniteCharge {
            rank: 0,
            segment: 0,
            label: "h".into(),
            value: f64::NAN,
        };
        assert_eq!(diags[0].message, expect.to_string());
    }

    #[test]
    fn the_walk_reports_every_finding_not_just_the_first() {
        let nodes = trace(vec![
            Segment::Host {
                seconds: f64::INFINITY,
                label: "h".into(),
            },
            kernel(0.0, 1e-5),
            Segment::Collective {
                seconds: -0.5,
                bytes: 1e6,
                label: "allreduce".into(),
            },
        ]);
        let diags = raw_cost_pass(&nodes, false);
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                Code::NonFiniteCharge,
                Code::EmptyKernelGrid,
                Code::NegativeCharge
            ]
        );
        assert_eq!(diags[2].locus.segment, Some(2));
    }

    #[test]
    fn underflow_risk_needs_overlap() {
        let nodes = trace(vec![Segment::Transfer {
            bytes: 0.0,
            dir: crate::trace::TransferDir::DeviceToHost,
            label: "d2h".into(),
        }]);
        assert!(raw_cost_pass(&nodes, false).is_empty());
        let diags = raw_cost_pass(&nodes, true);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::StreamUnderflowRisk);
    }

    #[test]
    fn degenerate_calibration_prices_non_finite_derived_costs() {
        let nodes = trace(vec![Segment::Transfer {
            bytes: 1e6,
            dir: crate::trace::TransferDir::HostToDevice,
            label: "h2d".into(),
        }]);
        let mut gpu = DeviceCalib::a100();
        gpu.pcie_bw = 0.0;
        let diag = derived_cost_check(&nodes, &gpu).expect("derived cost is infinite");
        assert_eq!(diag.code, Code::NonFiniteCharge);
        assert_eq!(diag.locus.rank, Some(0));
        assert_eq!(diag.locus.label.as_deref(), Some("h2d"));
    }
}
