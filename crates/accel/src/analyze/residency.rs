//! Pass 2 — peak-residency OOM prediction.
//!
//! Every rank's trace carries its recorded peak device watermark
//! (`peak_device_bytes`, the alloc/free balance maxed over the run by
//! the memory-pool accounting at record time). The engine admits a
//! replay only if, for every physical GPU, the watermarks of the ranks
//! placed on it (`local_rank % gpus`) fit in device memory — checked
//! before the first event. This pass replicates that admission check
//! bit for bit, so its `M001` prediction is exact: [`predict_oom`]
//! returns the very [`EngineError::Oom`] the engine would, and a clean
//! pass proves the replay cannot OOM. On top of the exact check it
//! warns (`M002`) when a pool lands within a configurable headroom of
//! capacity — feasible, but one calibration tweak away from rejection.

use crate::engine::error::EngineError;
use crate::node::NodeOom;
use crate::trace::RankTrace;

use super::diag::{Code, Diagnostic, Locus};

/// The exact [`EngineError::Oom`] the engine's admission check would
/// raise for this layout, or `None` when every pool fits.
pub(crate) fn predict_oom(
    nodes: &[Vec<RankTrace>],
    mem_bytes: u64,
    gpus: u32,
) -> Option<EngineError> {
    let gpus = gpus.max(1) as usize;
    for (n, node) in nodes.iter().enumerate() {
        for g in 0..gpus {
            let demanded: u64 = node
                .iter()
                .enumerate()
                .filter(|(r, _)| r % gpus == g)
                .map(|(_, t)| t.peak_device_bytes)
                .sum();
            if demanded > mem_bytes {
                return Some(EngineError::Oom(NodeOom {
                    gpu: (n * gpus + g) as u32,
                    demanded,
                    capacity: mem_bytes,
                }));
            }
        }
    }
    None
}

/// Run the residency pass over *every* pool (the engine stops at the
/// first overflow; a report should name them all): `M001` errors for
/// pools that must OOM, `M002` warnings for pools above
/// `headroom × capacity`.
pub(crate) fn residency_pass(
    nodes: &[Vec<RankTrace>],
    mem_bytes: u64,
    gpus: u32,
    headroom: f64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let gpus = gpus.max(1) as usize;
    for (n, node) in nodes.iter().enumerate() {
        for g in 0..gpus {
            let residents: Vec<usize> = (0..node.len()).filter(|r| r % gpus == g).collect();
            let demanded: u64 = residents.iter().map(|&r| node[r].peak_device_bytes).sum();
            let gpu = (n * gpus + g) as u32;
            if demanded > mem_bytes {
                let oom = NodeOom {
                    gpu,
                    demanded,
                    capacity: mem_bytes,
                };
                let heaviest = residents
                    .iter()
                    .max_by_key(|&&r| node[r].peak_device_bytes)
                    .copied()
                    .expect("an overflowing pool has residents");
                out.push(
                    Diagnostic::error(
                        Code::OomPredicted,
                        Locus::gpu(gpu),
                        EngineError::Oom(oom).to_string(),
                    )
                    .with_suggestion(format!(
                        "{} rank(s) share GPU {gpu}; the heaviest (rank {}, {} B peak) alone decides feasibility — raise gpus-per-node, drop ranks, or pick a larger-memory calibration",
                        residents.len(),
                        heaviest,
                        node[heaviest].peak_device_bytes,
                    )),
                );
            } else if demanded > 0 && demanded as f64 > headroom * mem_bytes as f64 {
                out.push(Diagnostic::warn(
                    Code::OomHeadroom,
                    Locus::gpu(gpu),
                    format!(
                        "GPU {gpu} peak residency {demanded} B is within {:.0}% of its {mem_bytes} B capacity",
                        100.0 * (1.0 - headroom)
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank(peak: u64) -> RankTrace {
        RankTrace {
            peak_device_bytes: peak,
            ..RankTrace::default()
        }
    }

    #[test]
    fn fitting_layouts_predict_nothing() {
        let nodes = vec![vec![rank(10), rank(10), rank(10), rank(10)]];
        assert_eq!(predict_oom(&nodes, 100, 2), None);
        assert!(residency_pass(&nodes, 100, 2, 0.9).is_empty());
    }

    #[test]
    fn prediction_matches_the_engine_error_shape() {
        // gpus=2: ranks {0,2} on gpu 0 (30+40=70 fits), {1,3} on gpu 1
        // (50+60=110 overflows).
        let nodes = vec![vec![rank(30), rank(50), rank(40), rank(60)]];
        let err = predict_oom(&nodes, 100, 2).expect("pool 1 overflows");
        assert_eq!(
            err,
            EngineError::Oom(NodeOom {
                gpu: 1,
                demanded: 110,
                capacity: 100,
            })
        );
        let diags = residency_pass(&nodes, 100, 2, 0.9);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::OomPredicted);
        assert_eq!(diags[0].locus.gpu, Some(1));
        assert_eq!(diags[0].message, err.to_string());
        assert!(diags[0]
            .suggestion
            .as_deref()
            .expect("suggestion")
            .contains("rank 3, 60 B peak"));
    }

    #[test]
    fn the_pass_reports_every_pool_the_engine_stops_at_the_first() {
        let nodes = vec![vec![rank(200)], vec![rank(300)]];
        // Engine (and predict_oom) name only node 0's pool…
        let first = predict_oom(&nodes, 100, 1).expect("overflow");
        assert_eq!(first.as_oom().expect("oom").gpu, 0);
        // …while the report pass lists both.
        let diags = residency_pass(&nodes, 100, 1, 0.9);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[1].locus.gpu, Some(1));
    }

    #[test]
    fn headroom_is_a_warning_band_under_capacity() {
        let nodes = vec![vec![rank(95)]];
        assert_eq!(predict_oom(&nodes, 100, 1), None);
        let diags = residency_pass(&nodes, 100, 1, 0.9);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::OomHeadroom);
        assert_eq!(diags[0].severity, super::super::Severity::Warn);
        // Exactly at capacity is still feasible; below the band, silent.
        assert!(residency_pass(&[vec![rank(80)]], 100, 1, 0.9).is_empty());
    }

    #[test]
    fn gpus_zero_clamps_to_one_like_the_engine() {
        let nodes = vec![vec![rank(60), rank(60)]];
        let err = predict_oom(&nodes, 100, 0).expect("one pool holds both");
        assert_eq!(err.as_oom().expect("oom").demanded, 120);
    }
}
