//! Typed diagnostics: what the analyzer reports and how it renders.
//!
//! A [`Diagnostic`] is one finding; a [`Report`] is the outcome of a
//! whole check. Codes are stable strings (`B001`, `M002`, …) grouped by
//! pass — see `DESIGN.md` § 7 for the full table and each pass's
//! soundness contract. Severities carry the admission decision:
//! [`Severity::Error`] means the engine is proven (or presumed, for
//! scenario-level checks) unable to replay the input, [`Severity::Warn`]
//! flags a suspicious but replayable description.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but replayable: the engine will accept the input.
    Warn,
    /// Admission-blocking: the replay is proven to fail (workload
    /// passes) or the description is self-contradictory (scenario
    /// passes).
    Error,
}

impl Severity {
    /// Stable lowercase name (used in JSON and tables).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes, grouped by pass: `B` barrier/collective
/// matching, `M` memory/peak residency, `C` cost sanity, `S` scenario
/// and layout lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Code {
    /// Collective counts differ across participating ranks — the job
    /// deadlocks at the first barrier the short rank never joins.
    CollectiveMismatch,
    /// Collective *labels* diverge at one barrier seq: the ranks
    /// synchronise, but apparently on different operations.
    CollectiveLabelDivergence,
    /// Some ranks perform collectives while others perform none at all.
    PartialParticipation,
    /// Co-located peak footprints exceed a GPU's memory: the replay is
    /// proven to OOM at admission.
    OomPredicted,
    /// Peak residency lands within the configured headroom of capacity.
    OomHeadroom,
    /// A charge is NaN or infinite (recorded, or derived by the cost
    /// model from the calibration).
    NonFiniteCharge,
    /// A recorded magnitude is negative — priced as an instant no-op.
    NegativeCharge,
    /// A kernel launch with no work items.
    EmptyKernelGrid,
    /// An asynchronous transfer whose priced link time can reach zero —
    /// its completion races its own enqueue on the stream.
    StreamUnderflowRisk,
    /// `procs` cannot be laid out on the node's cores.
    InfeasibleProcs,
    /// More GPUs than ranks per node: devices provably idle.
    IdleGpus,
    /// Processes oversubscribe GPUs without MPS: every kernel pays the
    /// full context-switch cost (paper § 3.1.2).
    OversubscribedNoMps,
    /// Transfer overlap requested where no transfer segments can exist.
    OverlapWithoutTransfers,
    /// A calibration field the cost model cannot price.
    DegenerateCalib,
    /// The framework's fixed per-process device reservations alone
    /// exceed GPU memory under this layout.
    ReservationsExceedMemory,
}

impl Code {
    /// The stable short code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::CollectiveMismatch => "B001",
            Code::CollectiveLabelDivergence => "B002",
            Code::PartialParticipation => "B003",
            Code::OomPredicted => "M001",
            Code::OomHeadroom => "M002",
            Code::NonFiniteCharge => "C001",
            Code::NegativeCharge => "C002",
            Code::EmptyKernelGrid => "C003",
            Code::StreamUnderflowRisk => "C004",
            Code::InfeasibleProcs => "S001",
            Code::IdleGpus => "S002",
            Code::OversubscribedNoMps => "S003",
            Code::OverlapWithoutTransfers => "S004",
            Code::DegenerateCalib => "S005",
            Code::ReservationsExceedMemory => "S006",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a finding points: any combination of rank, segment index,
/// label, GPU index and calibration/scenario field. Workload passes
/// populate rank/segment/label with the same indices the engine's
/// runtime errors use, so static and runtime reports line up.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Locus {
    /// Global rank (node-major, as in engine errors).
    pub rank: Option<usize>,
    /// Segment index within the rank's recorded trace.
    pub segment: Option<usize>,
    /// Accounting label of the offending segment.
    pub label: Option<String>,
    /// Global GPU index (node-major), for residency findings.
    pub gpu: Option<u32>,
    /// Dotted field path, for calibration/scenario findings.
    pub field: Option<String>,
}

impl Locus {
    /// A rank/segment/label locus (the workload-pass shape).
    pub fn segment(rank: usize, segment: usize, label: impl Into<String>) -> Self {
        Locus {
            rank: Some(rank),
            segment: Some(segment),
            label: Some(label.into()),
            ..Locus::default()
        }
    }

    /// A bare rank locus.
    pub fn rank(rank: usize) -> Self {
        Locus {
            rank: Some(rank),
            ..Locus::default()
        }
    }

    /// A GPU locus (residency findings).
    pub fn gpu(gpu: u32) -> Self {
        Locus {
            gpu: Some(gpu),
            ..Locus::default()
        }
    }

    /// A field-path locus (calibration/scenario findings).
    pub fn field(path: impl Into<String>) -> Self {
        Locus {
            field: Some(path.into()),
            ..Locus::default()
        }
    }

    /// Compact human rendering, e.g. `rank 3 seg 7 ('mpi_allreduce')`;
    /// empty when nothing is set.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(r) = self.rank {
            parts.push(format!("rank {r}"));
        }
        if let Some(s) = self.segment {
            parts.push(format!("seg {s}"));
        }
        if let Some(g) = self.gpu {
            parts.push(format!("gpu {g}"));
        }
        if let Some(l) = &self.label {
            parts.push(format!("('{l}')"));
        }
        if let Some(f) = &self.field {
            parts.push(f.clone());
        }
        parts.join(" ")
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (see [`Code`]).
    pub code: Code,
    /// Whether this finding blocks admission.
    pub severity: Severity,
    /// What the finding points at.
    pub locus: Locus,
    /// Human-readable statement of the problem. For findings that
    /// correspond to a provable engine failure, this is the *same text*
    /// the engine's runtime error would carry.
    pub message: String,
    /// What to change, when the fix is mechanical.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Build an error-severity diagnostic.
    pub fn error(code: Code, locus: Locus, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            locus,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Build a warning-severity diagnostic.
    pub fn warn(code: Code, locus: Locus, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warn,
            locus,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach a suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// One machine-readable JSON object (no trailing newline), in the
    /// workspace's hand-rolled lossless style.
    pub fn to_json(&self) -> String {
        use crate::whatif::esc;
        let mut out = format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\"",
            self.code.as_str(),
            self.severity.as_str()
        );
        if let Some(r) = self.locus.rank {
            out.push_str(&format!(",\"rank\":{r}"));
        }
        if let Some(s) = self.locus.segment {
            out.push_str(&format!(",\"segment\":{s}"));
        }
        if let Some(g) = self.locus.gpu {
            out.push_str(&format!(",\"gpu\":{g}"));
        }
        if let Some(l) = &self.locus.label {
            out.push_str(&format!(",\"label\":\"{}\"", esc(l)));
        }
        if let Some(fp) = &self.locus.field {
            out.push_str(&format!(",\"field\":\"{}\"", esc(fp)));
        }
        out.push_str(&format!(",\"message\":\"{}\"", esc(&self.message)));
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(",\"suggestion\":\"{}\"", esc(s)));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.code, self.severity)?;
        let locus = self.locus.render();
        if !locus.is_empty() {
            write!(f, " {locus}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, " (suggestion: {s})")?;
        }
        Ok(())
    }
}

/// The outcome of one check: every finding, in pass order (barrier,
/// residency, cost, lints) and deterministic within a pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Findings that block admission.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Non-blocking findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    /// True when nothing blocks admission (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// JSONL: one diagnostic object per line (empty string when clean).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            Code::CollectiveMismatch,
            Code::CollectiveLabelDivergence,
            Code::PartialParticipation,
            Code::OomPredicted,
            Code::OomHeadroom,
            Code::NonFiniteCharge,
            Code::NegativeCharge,
            Code::EmptyKernelGrid,
            Code::StreamUnderflowRisk,
            Code::InfeasibleProcs,
            Code::IdleGpus,
            Code::OversubscribedNoMps,
            Code::OverlapWithoutTransfers,
            Code::DegenerateCalib,
            Code::ReservationsExceedMemory,
        ];
        let mut seen: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), all.len(), "duplicate diagnostic code");
    }

    #[test]
    fn display_and_json_carry_the_locus() {
        let d = Diagnostic::error(
            Code::NonFiniteCharge,
            Locus::segment(3, 7, "mpi_allreduce"),
            "rank 3 segment 7 ('mpi_allreduce') carries a non-finite charge (NaN)",
        )
        .with_suggestion("re-record the run");
        let text = d.to_string();
        assert!(text.starts_with("C001 [error] rank 3 seg 7 ('mpi_allreduce'):"));
        assert!(text.contains("suggestion: re-record"));
        let json = d.to_json();
        assert!(json.contains("\"code\":\"C001\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"rank\":3"));
        assert!(json.contains("\"segment\":7"));
        assert!(json.contains("\"label\":\"mpi_allreduce\""));
        assert!(json.contains("\"suggestion\":\"re-record the run\""));
    }

    #[test]
    fn report_partitions_by_severity() {
        let mut rep = Report::default();
        assert!(rep.is_clean());
        rep.diagnostics
            .push(Diagnostic::warn(Code::IdleGpus, Locus::default(), "w"));
        assert!(rep.is_clean());
        assert_eq!(rep.warnings().count(), 1);
        rep.diagnostics.push(Diagnostic::error(
            Code::OomPredicted,
            Locus::gpu(2),
            "GPU 2 out of memory",
        ));
        assert!(!rep.is_clean());
        assert!(rep.has(Code::OomPredicted));
        assert!(!rep.has(Code::CollectiveMismatch));
        assert_eq!(rep.to_jsonl().lines().count(), 2);
    }
}
