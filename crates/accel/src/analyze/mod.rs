//! `simlint` — static pre-flight analysis of recorded workloads.
//!
//! Every check here runs *without executing a single event*: the
//! analyzer inspects recorded traces and calibrations and predicts what
//! the discrete-event engine would do with them. Four passes, in report
//! order:
//!
//! 1. **Barrier/collective matching** (`barrier`) — proves the job
//!    deadlock-free, or names the first mismatched collective and the
//!    exact [`crate::engine::error::EngineError::Deadlock`] the engine
//!    would return (`B001`–`B003`).
//! 2. **Peak residency** (`residency`) — replicates the engine's
//!    admission OOM check bit for bit and reports every overflowing
//!    pool, plus a configurable headroom band (`M001`/`M002`).
//! 3. **Cost sanity** (`cost`) — non-finite or negative charges,
//!    zero-item kernel grids, stream-underflow reachability; subsumes
//!    the engine's runtime charge validation (`C001`–`C004`).
//! 4. **Layout & calibration lints** (`lints`) — idle devices,
//!    MPS-less oversubscription, pointless overlap flags, degenerate
//!    rooflines (`S002`–`S005`).
//!
//! Soundness contract (see `DESIGN.md` § 7): error-severity findings
//! from the barrier and residency passes are **exact** — the replay is
//! proven to fail with the very error text carried in the diagnostic
//! `message`, and a clean pass proves the corresponding runtime error
//! unreachable. Warnings are best-effort. That exactness is what lets
//! the what-if sweep's `--preflight` mode prune statically-rejected
//! grid points while staying bit-identical to the unpruned sweep.
//!
//! Entry points: [`check_workload`] lints a recording under its own
//! embedded calibration and layout, [`check_workload_under`] swaps in
//! an explicit [`AnalyzeConfig`] (the sweep's per-point view), and
//! [`check_calib`] gates bare calibrations (used by the scenario-level
//! checker in the `scenario` crate).

mod barrier;
mod cost;
pub mod diag;
mod lints;
mod residency;

pub use diag::{Code, Diagnostic, Locus, Report, Severity};

pub(crate) use barrier::predict_deadlock;
pub(crate) use residency::predict_oom;

use crate::calib::{NetCalib, NodeCalib};
use crate::whatif::{RecordMeta, RecordedWorkload};

/// The environment a workload is checked against: the calibration and
/// layout the replay would use. [`AnalyzeConfig::for_recording`] reads
/// it straight off a recording's metadata; the sweep builds one per
/// grid point.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Node calibration (CPU + GPU + framework rooflines).
    pub node: NodeCalib,
    /// Interconnect calibration.
    pub net: NetCalib,
    /// GPUs per node.
    pub gpus: u32,
    /// Whether MPS shares devices between co-located ranks.
    pub mps: bool,
    /// Whether transfer streams overlap with compute.
    pub overlap_transfers: bool,
    /// Residency fraction above which `M002` warns (default 0.9:
    /// pools above 90 % of device memory are flagged).
    pub headroom: f64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            node: NodeCalib::default(),
            net: NetCalib::default(),
            gpus: 1,
            mps: true,
            overlap_transfers: false,
            headroom: 0.9,
        }
    }
}

impl AnalyzeConfig {
    /// The configuration a plain `replay` of this recording would use.
    pub fn for_recording(meta: &RecordMeta) -> Self {
        AnalyzeConfig {
            node: meta.node_calib,
            net: meta.net_calib,
            gpus: meta.gpus,
            mps: meta.mps,
            overlap_transfers: meta.overlap_transfers,
            headroom: 0.9,
        }
    }
}

/// Check a recording under its own embedded calibration and layout —
/// the exact environment `replay(node, net, None)` would run in.
pub fn check_workload(workload: &RecordedWorkload) -> Report {
    check_workload_under(workload, &AnalyzeConfig::for_recording(&workload.meta))
}

/// Check a recording under an explicit environment. Passes run in
/// fixed order (barrier, residency, cost, lints) and each pass emits
/// deterministically, so two calls on the same input produce identical
/// reports.
pub fn check_workload_under(workload: &RecordedWorkload, cfg: &AnalyzeConfig) -> Report {
    let nodes = &workload.nodes;
    let mut diagnostics = Vec::new();

    diagnostics.extend(barrier::barrier_pass(nodes));
    diagnostics.extend(residency::residency_pass(
        nodes,
        cfg.node.gpu.mem_bytes,
        cfg.gpus,
        cfg.headroom,
    ));

    let raw = cost::raw_cost_pass(nodes, cfg.overlap_transfers);
    let raw_has_non_finite = raw.iter().any(|d| d.code == Code::NonFiniteCharge);
    diagnostics.extend(raw);
    // Pricing a trace with non-finite recorded charges would re-report
    // the same segments; only chase calibration-induced infinities when
    // the recording itself is finite.
    if !raw_has_non_finite {
        diagnostics.extend(cost::derived_cost_check(nodes, &cfg.node.gpu));
    }

    diagnostics.extend(lints::layout_lints(
        nodes,
        cfg.gpus,
        cfg.mps,
        cfg.overlap_transfers,
    ));
    diagnostics.extend(lints::calib_lints(&cfg.node, &cfg.net));

    Report { diagnostics }
}

/// Gate a bare calibration pair: `S005` errors for every field the
/// cost model cannot price. Used by the scenario-level checker.
pub fn check_calib(node: &NodeCalib, net: &NetCalib) -> Vec<Diagnostic> {
    lints::calib_lints(node, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelProfile;
    use crate::trace::{RankTrace, Segment, TransferDir};

    fn sample_workload(ranks: usize, collectives_per_rank: &[usize]) -> RecordedWorkload {
        assert_eq!(ranks, collectives_per_rank.len());
        let traces = collectives_per_rank
            .iter()
            .map(|&n| {
                let mut segments = vec![
                    Segment::Host {
                        seconds: 1e-3,
                        label: "setup".into(),
                    },
                    Segment::Kernel {
                        profile: KernelProfile {
                            name: "axpy".into(),
                            items: 1e6,
                            flops_per_item: 2.0,
                            bytes_per_item: 24.0,
                            divergence: 1.0,
                        },
                        dispatch: 1e-5,
                    },
                    Segment::Transfer {
                        bytes: 8e6,
                        dir: TransferDir::HostToDevice,
                        label: "h2d".into(),
                    },
                ];
                for _ in 0..n {
                    segments.push(Segment::Collective {
                        seconds: 1e-3,
                        bytes: 1e6,
                        label: "mpi_allreduce".into(),
                    });
                }
                RankTrace {
                    segments,
                    peak_device_bytes: 1 << 20,
                    ..RankTrace::default()
                }
            })
            .collect();
        RecordedWorkload {
            meta: RecordMeta::default(),
            nodes: vec![traces],
        }
    }

    #[test]
    fn a_healthy_recording_is_clean() {
        let w = sample_workload(4, &[2, 2, 2, 2]);
        let report = check_workload(&w);
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.diagnostics
        );
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn passes_report_in_fixed_order() {
        // One workload tripping three passes at once: ragged collectives
        // (B001), an OOM pool (M001) and a NaN charge (C001).
        let mut w = sample_workload(2, &[2, 1]);
        w.nodes[0][0].peak_device_bytes = u64::MAX / 2;
        w.nodes[0][0].segments.push(Segment::Host {
            seconds: f64::NAN,
            label: "bad".into(),
        });
        let report = check_workload(&w);
        let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
        let pos = |c: Code| codes.iter().position(|&x| x == c).expect("code present");
        assert!(pos(Code::CollectiveMismatch) < pos(Code::OomPredicted));
        assert!(pos(Code::OomPredicted) < pos(Code::NonFiniteCharge));
        assert!(!report.is_clean());
    }

    #[test]
    fn config_overrides_swap_the_environment() {
        let w = sample_workload(4, &[1, 1, 1, 1]);
        assert!(check_workload(&w).is_clean());
        // Same recording, smaller device: every pool overflows.
        let mut cfg = AnalyzeConfig::for_recording(&w.meta);
        cfg.node.gpu.mem_bytes = 1;
        cfg.gpus = 1;
        let report = check_workload_under(&w, &cfg);
        assert!(report.has(Code::OomPredicted));
    }

    #[test]
    fn check_calib_flags_each_degenerate_roofline() {
        let mut node = NodeCalib::default();
        node.gpu.fp64_peak = f64::NAN;
        let net = NetCalib {
            bw: 0.0,
            ..NetCalib::default()
        };
        let diags = check_calib(&node, &net);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == Code::DegenerateCalib));
        assert!(check_calib(&NodeCalib::default(), &NetCalib::default()).is_empty());
    }
}
