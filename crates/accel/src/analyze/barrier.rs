//! Pass 1 — barrier/collective matching.
//!
//! Abstract-interprets each rank's segment sequence down to its
//! *collective shape* — the ordered list of collective segments it will
//! join — and checks the shapes against the engine's barrier semantics:
//! a collective involves every rank that participates in collectives at
//! all, barriers release in sequence order, and a rank joins its `s`-th
//! collective only after barrier `s − 1` released. Under those
//! semantics the replay deadlocks **iff** participating ranks disagree
//! on how many collectives they perform; the first barrier the
//! minimum-count ranks never join is where everyone else hangs.
//!
//! This pass is exact (sound *and* complete) with respect to
//! [`EngineError::Deadlock`]: [`predict_deadlock`] reproduces the very
//! error value — same blocked count, same waiting ranks in the same
//! order, same collective labels — that the engine would return after
//! replaying to quiescence.

use crate::engine::error::EngineError;
use crate::trace::{RankTrace, Segment};

use super::diag::{Code, Diagnostic, Locus};

/// One rank's collective shape: `(segment index, label)` of every
/// collective segment, in trace order.
struct Shape<'a> {
    rank: usize,
    collectives: Vec<(usize, &'a str)>,
}

fn shapes(nodes: &[Vec<RankTrace>]) -> Vec<Shape<'_>> {
    let mut out = Vec::new();
    let mut rank = 0usize;
    for node in nodes {
        for trace in node {
            let collectives = trace
                .segments
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Segment::Collective { label, .. } => Some((i, label.as_str())),
                    _ => None,
                })
                .collect();
            out.push(Shape { rank, collectives });
            rank += 1;
        }
    }
    out
}

/// The exact [`EngineError::Deadlock`] the engine would produce for
/// this workload, or `None` when every barrier provably fills.
pub(crate) fn predict_deadlock(nodes: &[Vec<RankTrace>]) -> Option<EngineError> {
    let shapes = shapes(nodes);
    let participants: Vec<&Shape<'_>> = shapes
        .iter()
        .filter(|s| !s.collectives.is_empty())
        .collect();
    let min = participants.iter().map(|s| s.collectives.len()).min()?;
    let waiting: Vec<(usize, String)> = participants
        .iter()
        .filter(|s| s.collectives.len() > min)
        .map(|s| (s.rank, s.collectives[min].1.to_string()))
        .collect();
    if waiting.is_empty() {
        return None;
    }
    Some(EngineError::Deadlock {
        blocked: waiting.len(),
        waiting,
    })
}

/// Run the barrier pass: a `B001` error when the job provably
/// deadlocks (message shared verbatim with the runtime error), a
/// `B002` warning when ranks synchronise on differently-labelled
/// collectives, and a `B003` warning when only part of the job
/// participates in collectives.
pub(crate) fn barrier_pass(nodes: &[Vec<RankTrace>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let shapes = shapes(nodes);
    let participants: Vec<&Shape<'_>> = shapes
        .iter()
        .filter(|s| !s.collectives.is_empty())
        .collect();
    if participants.is_empty() {
        return out;
    }

    if let Some(err) = predict_deadlock(nodes) {
        let min = participants
            .iter()
            .map(|s| s.collectives.len())
            .min()
            .expect("participants is non-empty");
        let short = participants
            .iter()
            .find(|s| s.collectives.len() == min)
            .expect("some participant has the minimum count");
        let stuck = participants
            .iter()
            .find(|s| s.collectives.len() > min)
            .expect("a predicted deadlock has a waiting rank");
        let (seg, label) = stuck.collectives[min];
        out.push(
            Diagnostic::error(Code::CollectiveMismatch, Locus::segment(stuck.rank, seg, label), err.to_string())
                .with_suggestion(format!(
                    "rank {} performs {} collective(s) but rank {} performs {}: '{}' (segment {} of rank {}) is the first collective its peers never join — align the ranks' collective sequences",
                    stuck.rank,
                    stuck.collectives.len(),
                    short.rank,
                    min,
                    label,
                    seg,
                    stuck.rank,
                )),
        );
    }

    // Label divergence: ranks that *do* synchronise at seq `s` but name
    // different operations. Only the first divergent seq is reported —
    // later barriers usually diverge as a consequence.
    let depth = participants
        .iter()
        .map(|s| s.collectives.len())
        .min()
        .expect("participants is non-empty");
    'seqs: for s in 0..depth {
        let (first, rest) = participants.split_first().expect("non-empty");
        let (_, expect) = first.collectives[s];
        for p in rest {
            let (seg, got) = p.collectives[s];
            if got != expect {
                out.push(
                    Diagnostic::warn(
                        Code::CollectiveLabelDivergence,
                        Locus::segment(p.rank, seg, got),
                        format!(
                            "collective {s}: rank {} calls '{expect}' where rank {} calls '{got}' — the barrier fills, but the ranks appear to reduce different things",
                            first.rank, p.rank
                        ),
                    ),
                );
                break 'seqs;
            }
        }
    }

    if participants.len() < shapes.len() {
        let outsiders = shapes.len() - participants.len();
        let first_out = shapes
            .iter()
            .find(|s| s.collectives.is_empty())
            .expect("counted a non-participant");
        out.push(Diagnostic::warn(
            Code::PartialParticipation,
            Locus::rank(first_out.rank),
            format!(
                "{outsiders} of {} rank(s) perform no collectives while the rest synchronise; they are treated as outside the collective communicator",
                shapes.len()
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coll(label: &str) -> Segment {
        Segment::Collective {
            seconds: 1e-3,
            bytes: 1e6,
            label: label.into(),
        }
    }

    fn host() -> Segment {
        Segment::Host {
            seconds: 1e-3,
            label: "h".into(),
        }
    }

    fn trace(segments: Vec<Segment>) -> RankTrace {
        RankTrace {
            segments,
            ..RankTrace::default()
        }
    }

    #[test]
    fn symmetric_jobs_prove_deadlock_free() {
        let nodes = vec![
            vec![
                trace(vec![host(), coll("a"), coll("b")]),
                trace(vec![coll("a"), host(), coll("b")]),
            ],
            vec![trace(vec![coll("a"), coll("b")])],
        ];
        assert_eq!(predict_deadlock(&nodes), None);
        assert!(barrier_pass(&nodes).is_empty());
    }

    #[test]
    fn ragged_counts_predict_the_exact_engine_error() {
        let nodes = vec![vec![
            trace(vec![coll("a"), coll("b")]),
            trace(vec![coll("a")]),
        ]];
        let err = predict_deadlock(&nodes).expect("ragged job deadlocks");
        assert_eq!(
            err,
            EngineError::Deadlock {
                blocked: 1,
                waiting: vec![(0, "b".into())],
            }
        );
        let diags = barrier_pass(&nodes);
        let b001 = diags
            .iter()
            .find(|d| d.code == Code::CollectiveMismatch)
            .expect("B001");
        assert_eq!(b001.message, err.to_string());
        assert_eq!(b001.locus.rank, Some(0));
        assert_eq!(b001.locus.segment, Some(1));
        assert_eq!(b001.locus.label.as_deref(), Some("b"));
        let sug = b001.suggestion.as_deref().expect("suggestion");
        assert!(sug.contains("rank 0 performs 2"));
        assert!(sug.contains("rank 1 performs 1"));
    }

    #[test]
    fn cross_node_raggedness_is_a_deadlock_too() {
        let nodes = vec![
            vec![trace(vec![coll("a"), coll("b")])],
            vec![trace(vec![coll("a")])],
        ];
        let err = predict_deadlock(&nodes).expect("cross-node ragged job deadlocks");
        assert_eq!(
            err,
            EngineError::Deadlock {
                blocked: 1,
                waiting: vec![(0, "b".into())],
            }
        );
    }

    #[test]
    fn label_divergence_is_a_warning_not_an_error() {
        let nodes = vec![vec![
            trace(vec![coll("allreduce_x")]),
            trace(vec![coll("allreduce_y")]),
        ]];
        assert_eq!(predict_deadlock(&nodes), None);
        let diags = barrier_pass(&nodes);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::CollectiveLabelDivergence);
        assert!(diags[0].message.contains("'allreduce_x'"));
        assert!(diags[0].message.contains("'allreduce_y'"));
    }

    #[test]
    fn partial_participation_warns_on_the_first_outsider() {
        let nodes = vec![vec![
            trace(vec![coll("a")]),
            trace(vec![host()]),
            trace(vec![coll("a")]),
        ]];
        let diags = barrier_pass(&nodes);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::PartialParticipation);
        assert_eq!(diags[0].locus.rank, Some(1));
    }

    #[test]
    fn collective_free_workloads_have_nothing_to_say() {
        let nodes = vec![vec![trace(vec![host()]), trace(vec![host()])]];
        assert_eq!(predict_deadlock(&nodes), None);
        assert!(barrier_pass(&nodes).is_empty());
    }
}
