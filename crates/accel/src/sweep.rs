//! Batched what-if optimization: *compile once, reprice many*.
//!
//! A [`crate::whatif::RecordedWorkload`] answers one "what would this run
//! cost on that hardware?" question per replay. The paper's real question
//! — which framework/hardware combination wins, and by what factor — is a
//! *search* over calibration space, and answering it point-by-point pays
//! the full workload compile (JSONL parse, `String` interning, segment
//! graph allocation) once per grid point. This module amortises all of
//! that:
//!
//! 1. the workload is compiled **once** into the engine's
//!    calibration-invariant arena (segment graph, interned labels,
//!    resource topology, byte/grid quantities);
//! 2. each distinct calibration materializes only a flat cost vector
//!    against that arena (`cost_table`), shared across every GPU count
//!    and schedule policy of the grid;
//! 3. each grid point replays through the discrete-event engine with a
//!    borrowed arena + cost table — no per-point allocation of either.
//!
//! On top of the hot path sit three optimizer features:
//!
//! * an **analytic lower bound** per point (critical path vs total work,
//!   see `lower_bound`) that prunes points provably unable to meet a
//!   `--deadline` without replaying them;
//! * **Pareto-front extraction** over (makespan, cost), where cost is a
//!   hardware price proxy ([`crate::calib::relative_node_price`]) times
//!   node-hours;
//! * a **deterministic fan-out**: points are evaluated in parallel (the
//!   rayon facade) but each writes only its own pre-allocated slot, and
//!   all reductions walk points in grid order, so sweep output is
//!   byte-identical across `RAYON_NUM_THREADS` settings — the same
//!   contract the engine's determinism suite locks.
//!
//! Repricing inside the cost table mirrors
//! [`crate::whatif::RecordedWorkload::reprice`] term for term, so a grid
//! point containing the identity calibration is **bit-identical** to
//! [`crate::whatif::RecordedWorkload::replay_identity`], and any preset
//! point is bit-identical to a standalone `replay` of that preset — the
//! differential oracle extended to the batched path.
//!
//! For long-running callers (the serve layer) the module also exposes
//! the sweep in resumable form: [`CompiledSweep`] separates the
//! compile-once arena from grid evaluation so many jobs sharing a
//! recording share one compile, and [`CompiledSweep::run_resumable`]
//! evaluates the grid in chunks, surfacing the completed prefix after
//! each chunk as a [`SweepCheckpoint`] cursor (lossless JSONL, guarded
//! by a content digest). Because every grid point is a pure function of
//! (workload, spec), a sweep resumed from any cursor produces a result
//! byte-identical to an uninterrupted run.

use std::io;
use std::path::Path;

use rayon::prelude::*;

use crate::calib::{relative_node_price, NetCalib, NodeCalib};
use crate::engine::sim::{simulate_compiled, CSeg, CompiledWorkload, Reprice};
use crate::engine::{EngineError, SchedulePolicyKind};
use crate::node::NodeConfig;
use crate::trace::RankTrace;
use crate::whatif::{
    bool_field, esc, int_field, num, num_field, parse_err, preset, presets, str_field, RecordMeta,
    RecordedWorkload, UnknownPreset, WhatifError,
};

/// One calibration axis value of a sweep grid: a resolved node + network
/// calibration under a CLI-visible name (`identity` or a preset name),
/// already rescaled to the recording's `work_scale`.
#[derive(Debug, Clone)]
pub struct SweepCalib {
    /// `identity` or a preset name — the label reports and JSONL carry.
    pub name: String,
    /// Node calibration to price kernels/transfers with.
    pub node: NodeCalib,
    /// Network calibration to reprice collectives with.
    pub net: NetCalib,
}

impl SweepCalib {
    /// Resolve a CLI name against the recording: `identity` means "the
    /// recorded calibration", anything else is a preset rescaled by the
    /// recording's `work_scale` (presets are defined at paper scale).
    pub fn resolve(name: &str, meta: &RecordMeta) -> Result<Self, UnknownPreset> {
        if name == "identity" {
            return Ok(Self {
                name: name.to_string(),
                node: meta.node_calib,
                net: meta.net_calib,
            });
        }
        let p = preset(name)?;
        Ok(Self {
            name: name.to_string(),
            node: p.node.rescaled(meta.work_scale),
            net: p.net,
        })
    }
}

/// The grid a sweep evaluates: every combination of calibration × GPUs
/// per node × schedule policy, optionally under a makespan deadline.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    pub calibs: Vec<SweepCalib>,
    pub gpus: Vec<u32>,
    pub schedules: Vec<SchedulePolicyKind>,
    /// Makespan budget in seconds: points whose analytic lower bound
    /// already exceeds it are pruned without a replay, and
    /// [`SweepResult::best_under_deadline`] picks the cheapest point that
    /// meets it.
    pub deadline: Option<f64>,
}

impl SweepSpec {
    /// The default grid for a recording: identity plus every preset on
    /// the calibration axis, the recorded GPU count and schedule on the
    /// other two, no deadline.
    pub fn default_grid(meta: &RecordMeta) -> Self {
        let mut calibs = vec![SweepCalib {
            name: "identity".into(),
            node: meta.node_calib,
            net: meta.net_calib,
        }];
        for p in presets() {
            calibs.push(SweepCalib {
                name: p.name.to_string(),
                node: p.node.rescaled(meta.work_scale),
                net: p.net,
            });
        }
        Self {
            calibs,
            gpus: vec![meta.gpus],
            schedules: vec![meta.schedule],
            deadline: None,
        }
    }

    /// Parse a `key=value;key=value` grid spec
    /// (`gpus=1,2,4..8;calib=identity,h100;schedule=mps,fifo`).
    /// Unspecified axes keep the [`SweepSpec::default_grid`] values.
    pub fn parse_grid(grid: &str, meta: &RecordMeta) -> Result<Self, String> {
        let mut spec = Self::default_grid(meta);
        for part in grid.split(';').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("grid clause '{part}' is not key=value"))?;
            match key.trim() {
                "gpus" => spec.gpus = parse_gpus(value)?,
                "calib" => spec.calibs = parse_calibs(value, meta)?,
                "schedule" => spec.schedules = parse_schedules(value)?,
                other => {
                    return Err(format!(
                        "unknown grid axis '{other}' (expected gpus, calib or schedule)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Number of grid points this spec enumerates.
    pub fn point_count(&self) -> usize {
        self.calibs.len() * self.gpus.len() * self.schedules.len()
    }
}

/// Parse a GPU-count axis: comma-separated values and inclusive `lo..hi`
/// ranges (`"2..4,8"` → `[2, 3, 4, 8]`).
pub fn parse_gpus(s: &str) -> Result<Vec<u32>, String> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if let Some((lo, hi)) = part.split_once("..") {
            let lo: u32 = lo
                .trim()
                .parse()
                .map_err(|_| format!("invalid gpu range start in '{part}'"))?;
            let hi: u32 = hi
                .trim()
                .parse()
                .map_err(|_| format!("invalid gpu range end in '{part}'"))?;
            if lo < 1 || hi < lo {
                return Err(format!("invalid gpu range '{part}' (need 1 <= lo <= hi)"));
            }
            out.extend(lo..=hi);
        } else {
            let v: u32 = part
                .parse()
                .map_err(|_| format!("invalid gpu count '{part}'"))?;
            if v < 1 {
                return Err(format!("gpu count must be >= 1, got '{part}'"));
            }
            out.push(v);
        }
    }
    if out.is_empty() {
        return Err("empty gpu list".into());
    }
    Ok(out)
}

/// Parse a comma-separated calibration axis (`identity,a100,h100`),
/// resolving each name against the recording.
pub fn parse_calibs(s: &str, meta: &RecordMeta) -> Result<Vec<SweepCalib>, String> {
    let out: Result<Vec<SweepCalib>, String> = s
        .split(',')
        .map(|name| SweepCalib::resolve(name.trim(), meta).map_err(|e| e.to_string()))
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err("empty calib list".into());
    }
    Ok(out)
}

/// Parse a comma-separated schedule axis (`auto,mps,fifo`).
pub fn parse_schedules(s: &str) -> Result<Vec<SchedulePolicyKind>, String> {
    let out: Result<Vec<SchedulePolicyKind>, String> =
        s.split(',').map(|p| p.trim().parse()).collect();
    let out = out?;
    if out.is_empty() {
        return Err("empty schedule list".into());
    }
    Ok(out)
}

/// One evaluated (or pruned) grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Calibration name (`identity` or a preset).
    pub calib: String,
    /// GPUs per node.
    pub gpus: u32,
    /// Kernel arbitration policy.
    pub schedule: SchedulePolicyKind,
    /// Analytic makespan lower bound (critical path vs total work);
    /// `0.0` when the point's cost table failed to materialize.
    pub lower_bound: f64,
    /// Replayed makespan; `None` when pruned or errored.
    pub makespan: Option<f64>,
    /// Cost proxy: nodes × gpus × [`relative_node_price`] × makespan
    /// ("node-GPU-hours at relative hardware price").
    pub cost: Option<f64>,
    /// Whether the pruner skipped the replay (`lower_bound > deadline`).
    pub pruned: bool,
    /// Replay failure (e.g. the configuration does not fit in device
    /// memory), kept per-point so one OOM cannot abort the sweep.
    pub error: Option<String>,
}

impl SweepPoint {
    /// One `point` JSONL object, exactly the line [`SweepResult::to_jsonl`]
    /// writes. `pareto` is a property of the whole result, not the point,
    /// so the caller supplies it (checkpoints write `false`).
    pub fn to_json(&self, pareto: bool) -> String {
        let opt = |v: Option<f64>| v.map_or_else(|| "null".into(), num);
        let mut out = format!(
            concat!(
                "{{\"type\":\"point\",\"calib\":\"{}\",\"gpus\":{},\"schedule\":\"{}\",",
                "\"lower_bound\":{},\"pruned\":{},\"makespan\":{},\"cost\":{},\"pareto\":{}"
            ),
            esc(&self.calib),
            self.gpus,
            self.schedule,
            num(self.lower_bound),
            self.pruned,
            opt(self.makespan),
            opt(self.cost),
            pareto,
        );
        if let Some(e) = &self.error {
            out.push_str(&format!(",\"error\":\"{}\"", esc(e)));
        }
        out.push('}');
        out
    }

    /// Parse a `point` line back (the checkpoint reader). Lossless: the
    /// shortest-round-trip float encoding restores the exact bits, so a
    /// parsed point re-serializes byte-identically. The `pareto` field is
    /// ignored — front membership is recomputed when the sweep finishes.
    pub fn parse(line: &str, ln: usize) -> Result<Self, WhatifError> {
        let calib = str_field(line, "calib")
            .ok_or_else(|| parse_err(ln, "missing string field 'calib'"))?;
        let gpus = int_field(line, "gpus", ln)?;
        let schedule: SchedulePolicyKind = str_field(line, "schedule")
            .ok_or_else(|| parse_err(ln, "missing string field 'schedule'"))?
            .parse()
            .map_err(|e: String| parse_err(ln, e))?;
        let lower_bound = num_field(line, "lower_bound", ln)?;
        let pruned = bool_field(line, "pruned", ln)?;
        let opt = |field: &str| -> Result<Option<f64>, WhatifError> {
            if line.contains(&format!("\"{field}\":null")) {
                Ok(None)
            } else {
                num_field(line, field, ln).map(Some)
            }
        };
        Ok(SweepPoint {
            calib,
            gpus,
            schedule,
            lower_bound,
            makespan: opt("makespan")?,
            cost: opt("cost")?,
            pruned,
            error: str_field(line, "error"),
        })
    }
}

/// What a sweep produced: every point in deterministic grid order
/// (calibration-major, then GPUs, then schedule) plus the extracted
/// optima.
#[derive(Debug, Clone)]
pub struct SweepResult {
    pub points: Vec<SweepPoint>,
    /// Indices into `points` of the Pareto front over (makespan, cost),
    /// sorted by makespan ascending. No member is dominated by any
    /// evaluated point.
    pub pareto: Vec<usize>,
    /// Index of the cheapest point whose makespan meets the deadline,
    /// when a deadline was set and any point meets it.
    pub best_under_deadline: Option<usize>,
    pub deadline: Option<f64>,
    /// Arena entries compiled once and shared by every point.
    pub compiled_segments: usize,
    /// Points actually replayed.
    pub evaluated: usize,
    /// Points skipped by the lower-bound pruner.
    pub pruned: usize,
    /// Points rejected statically by [`sweep_preflight`] without a
    /// replay (always `0` for [`sweep`]). Deliberately *not* serialized:
    /// a rejected point carries the same error text a replay would, so
    /// the JSONL output stays bit-identical across the two modes.
    pub rejected: usize,
}

impl SweepResult {
    /// Serialize as JSONL: one `sweep` header line, then one `point` line
    /// per grid point in grid order. Deterministic byte-for-byte (the
    /// determinism suite compares this output across thread counts);
    /// floats use the same shortest-round-trip encoding as the workload
    /// format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            concat!(
                "{{\"type\":\"sweep\",\"points\":{},\"evaluated\":{},\"pruned\":{},",
                "\"deadline\":{},\"compiled_segments\":{}}}\n"
            ),
            self.points.len(),
            self.evaluated,
            self.pruned,
            self.deadline.map_or_else(|| "null".into(), num),
            self.compiled_segments,
        ));
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&p.to_json(self.pareto.contains(&i)));
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Checkpoint cursor
// ---------------------------------------------------------------------------

/// A sweep cursor: the first `points.len()` grid points of a sweep, in
/// grid order, already evaluated. Serialized as lossless JSONL (one
/// header line, then the same `point` lines the sweep result uses), so a
/// killed sweep resumes from the cursor and still produces output
/// byte-identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// Grid size of the full sweep — a cursor for a different grid shape
    /// is refused at parse time.
    pub total: usize,
    /// [`sweep_digest`] of the (workload, spec) the cursor belongs to;
    /// resuming callers compare it before adopting the cursor.
    pub digest: u64,
    /// Completed prefix, grid order.
    pub points: Vec<SweepPoint>,
}

impl SweepCheckpoint {
    /// Serialize: one `sweep_checkpoint` header line, then one `point`
    /// line per completed grid point. Deterministic byte-for-byte.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"type\":\"sweep_checkpoint\",\"version\":1,\"digest\":{},",
                "\"total\":{},\"completed\":{}}}\n"
            ),
            self.digest,
            self.total,
            self.points.len(),
        );
        for p in &self.points {
            out.push_str(&p.to_json(false));
            out.push('\n');
        }
        out
    }

    /// Parse a serialized cursor. Typed errors on malformed lines, a
    /// version this build does not read, or a cursor whose declared
    /// `completed` count disagrees with the point lines it carries (a
    /// torn write — the atomic [`SweepCheckpoint::write`] never produces
    /// one, but a cursor is exactly the file one reads after a crash).
    pub fn parse_jsonl(text: &str) -> Result<Self, WhatifError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| parse_err(1, "empty checkpoint"))?;
        if !header.contains("\"type\":\"sweep_checkpoint\"") {
            return Err(parse_err(1, "not a sweep checkpoint (bad header line)"));
        }
        let version: u64 = int_field(header, "version", 1)?;
        if version != 1 {
            return Err(parse_err(
                1,
                format!("unsupported checkpoint version {version} (this build reads version 1)"),
            ));
        }
        let digest: u64 = int_field(header, "digest", 1)?;
        let total: usize = int_field(header, "total", 1)?;
        let completed: usize = int_field(header, "completed", 1)?;
        if completed > total {
            return Err(parse_err(
                1,
                format!("checkpoint cursor {completed} exceeds grid size {total}"),
            ));
        }
        let mut points = Vec::with_capacity(completed);
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            points.push(SweepPoint::parse(line, i + 1)?);
        }
        if points.len() != completed {
            return Err(parse_err(
                1,
                format!(
                    "checkpoint declares {completed} completed points but carries {}",
                    points.len()
                ),
            ));
        }
        Ok(SweepCheckpoint {
            total,
            digest,
            points,
        })
    }

    /// Read a cursor file.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, WhatifError> {
        let text = std::fs::read_to_string(path)?;
        Self::parse_jsonl(&text)
    }

    /// Atomic write (tmp + rename): a kill mid-write never leaves a torn
    /// cursor behind, only the previous complete one.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_jsonl())?;
        std::fs::rename(&tmp, path)
    }
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

/// Content digest of a recording: FNV-1a over its serialized JSONL. The
/// serve layer coalesces queued sweep jobs by this key, so two paths to
/// identical recording bytes share one compile.
pub fn workload_digest(workload: &RecordedWorkload) -> u64 {
    fnv1a(0xcbf2_9ce4_8422_2325, workload.to_jsonl().as_bytes())
}

/// Identity of a (workload, grid) pair. A resume checks the cursor's
/// digest against the job's before adopting it, so a checkpoint written
/// for different inputs is never spliced into a sweep.
pub fn sweep_digest(workload: &RecordedWorkload, spec: &SweepSpec) -> u64 {
    let mut h = workload_digest(workload);
    for c in &spec.calibs {
        h = fnv1a(h, c.name.as_bytes());
        h = fnv1a(h, b",");
    }
    h = fnv1a(h, b";");
    for g in &spec.gpus {
        h = fnv1a(h, g.to_string().as_bytes());
        h = fnv1a(h, b",");
    }
    h = fnv1a(h, b";");
    for s in &spec.schedules {
        h = fnv1a(h, s.to_string().as_bytes());
        h = fnv1a(h, b",");
    }
    h = fnv1a(h, b";");
    if let Some(d) = spec.deadline {
        h = fnv1a(h, num(d).as_bytes());
    }
    h
}

/// Why a resumed sweep refused its cursor (or failed to compile).
#[derive(Debug)]
pub enum SweepResumeError {
    /// The workload's traces failed to compile.
    Engine(EngineError),
    /// The cursor carries more points than the grid enumerates.
    CursorBeyondGrid { completed: usize, total: usize },
    /// A completed point's (calib, gpus, schedule) key does not match
    /// its grid slot — the cursor belongs to a different spec.
    CursorMismatch {
        index: usize,
        expected: String,
        found: String,
    },
}

impl std::fmt::Display for SweepResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepResumeError::Engine(e) => write!(f, "{e}"),
            SweepResumeError::CursorBeyondGrid { completed, total } => write!(
                f,
                "checkpoint cursor has {completed} completed points but the grid has only {total}"
            ),
            SweepResumeError::CursorMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "checkpoint point {index} is {found} but the grid expects {expected} there"
            ),
        }
    }
}

impl std::error::Error for SweepResumeError {}

impl From<EngineError> for SweepResumeError {
    fn from(e: EngineError) -> Self {
        SweepResumeError::Engine(e)
    }
}

/// Build the [`Reprice`] mirroring what
/// [`crate::whatif::RecordedWorkload::reprice`] would do to the recorded
/// charges for this calibration. The identity calibration maps to
/// [`Reprice::Identity`] (bitwise no-op); for presets the ratios are the
/// repricer's exact expressions, so the resulting cost table is
/// bit-identical to compiling the repriced traces.
fn reprice_for(meta: &RecordMeta, calib: &SweepCalib) -> Reprice {
    if calib.name == "identity" {
        return Reprice::Identity;
    }
    let old = &meta.node_calib;
    Reprice::Scaled {
        host_ratio: old.cpu.core_flops / calib.node.cpu.core_flops,
        alloc_ratio: if old.gpu.alloc_latency > 0.0 {
            calib.node.gpu.alloc_latency / old.gpu.alloc_latency
        } else {
            1.0
        },
        recorded_net: meta.net_calib,
        net: calib.net,
        total_ranks: meta.total_ranks,
    }
}

/// Analytic makespan lower bound for one (calibration, gpus) pair,
/// computed from the cost table without running the event loop.
///
/// The bound is the max of per-chain and per-resource aggregates, each of
/// which no schedule can beat:
///
/// * **per-rank critical path** — host seconds, kernel lead-ins plus solo
///   wall time (`device_seconds / util`; every policy serves a kernel at
///   rate ≤ its solo utilisation), collective network phases (NIC rate
///   ≤ 1), and synchronous transfers. With overlapped streams the
///   transfers leave the chain but the rank still cannot finish before
///   its own stream's summed link time;
/// * **per-GPU total device work** — every policy's aggregate service
///   rate is ≤ 1, so Σ `device_seconds` of co-located ranks is a floor;
/// * **per-link total transfer time** and **per-NIC total collective
///   time** — links and NICs are shared equally, aggregate rate 1.
///
/// Barrier waits and contention only add time, so pruning on
/// `lower_bound > deadline` never discards a feasible point.
pub(crate) fn lower_bound(
    compiled: &CompiledWorkload,
    costs: &[CSeg],
    gpus: u32,
    overlap_transfers: bool,
) -> f64 {
    let gpus = gpus.max(1) as usize;
    let mut bound: f64 = 0.0;
    for node in &compiled.nodes {
        let segs = &costs[node.seg_base..node.seg_base + node.seg_len];
        let mut gpu_work = vec![0.0f64; gpus];
        let mut link_work = vec![0.0f64; gpus];
        let mut nic_work = 0.0f64;
        for (local, r) in node.ranks.iter().enumerate() {
            let g = local % gpus;
            let mut chain = 0.0f64;
            let mut streamed = 0.0f64;
            for seg in &segs[r.seg_start as usize..r.seg_end as usize] {
                match *seg {
                    CSeg::Host { seconds, .. } => chain += seconds,
                    CSeg::Kernel {
                        lead,
                        device_seconds,
                        util,
                        ..
                    } => {
                        chain += lead + device_seconds / util;
                        gpu_work[g] += device_seconds;
                    }
                    CSeg::Transfer { seconds, .. } => {
                        if overlap_transfers {
                            streamed += seconds;
                        } else {
                            chain += seconds;
                        }
                        link_work[g] += seconds;
                    }
                    CSeg::Collective { seconds, .. } => {
                        chain += seconds;
                        nic_work += seconds;
                    }
                }
            }
            bound = bound.max(chain).max(streamed);
        }
        for g in 0..gpus {
            bound = bound.max(gpu_work[g]).max(link_work[g]);
        }
        bound = bound.max(nic_work);
    }
    bound
}

/// Run the sweep: compile the workload once, materialize one cost table
/// per calibration, then evaluate every grid point against the shared
/// arena. Only a malformed *recording* (non-finite recorded charge)
/// fails the whole sweep; per-point failures (OOM, a preset deriving a
/// non-finite cost) are captured on their [`SweepPoint`].
pub fn sweep(workload: &RecordedWorkload, spec: &SweepSpec) -> Result<SweepResult, EngineError> {
    sweep_impl(workload, spec, false)
}

/// [`sweep`] with the static pre-flight gate enabled: before replaying a
/// point, the analyzer's exact predictors (`analyze::predict_oom`,
/// `analyze::predict_deadlock`) decide whether the engine would reject
/// it. Statically-rejected points skip the replay entirely and record
/// the *same* error text the replay would have produced, so the
/// serialized output is bit-identical to [`sweep`]'s — only wall-clock
/// time and [`SweepResult::rejected`] differ.
pub fn sweep_preflight(
    workload: &RecordedWorkload,
    spec: &SweepSpec,
) -> Result<SweepResult, EngineError> {
    sweep_impl(workload, spec, true)
}

fn sweep_impl(
    workload: &RecordedWorkload,
    spec: &SweepSpec,
    preflight: bool,
) -> Result<SweepResult, EngineError> {
    let cs = CompiledSweep::compile(workload)?;
    let ctx = GridCtx::new(&cs, spec);
    let rejected = std::sync::atomic::AtomicUsize::new(0);
    // Pre-flight: the deadlock verdict is a property of the workload
    // alone (it depends on neither calibration nor GPU count), so it is
    // decided once here; the OOM verdict depends on (calibration, gpus)
    // and is re-derived per point inside the fan-out. Both predictors
    // replicate the engine's own checks exactly, so the recorded error
    // text matches what a replay would have produced.
    let pre = preflight.then(|| Preflight {
        nodes: &workload.nodes,
        deadlock: crate::analyze::predict_deadlock(&workload.nodes).map(|e| e.to_string()),
        rejected: &rejected,
    });
    let mut points = ctx.blank_points();
    points
        .par_iter_mut()
        .enumerate()
        .for_each(|(i, pt)| ctx.eval(i, pt, pre.as_ref()));
    Ok(ctx.finish(points, rejected.into_inner()))
}

/// A workload compiled once into the engine's calibration-invariant
/// arena, ready to evaluate many grids. This is the serve layer's
/// coalescing unit: queued sweep jobs that share a recording share one
/// `CompiledSweep`, so the segment-graph build and label interning are
/// paid once per batch rather than once per job.
pub struct CompiledSweep<'w> {
    workload: &'w RecordedWorkload,
    compiled: CompiledWorkload,
}

impl<'w> CompiledSweep<'w> {
    /// Compile the recording's traces into the shared arena.
    pub fn compile(workload: &'w RecordedWorkload) -> Result<Self, EngineError> {
        let slices: Vec<&[RankTrace]> = workload.nodes.iter().map(|v| v.as_slice()).collect();
        let compiled = CompiledWorkload::compile(&slices)?;
        Ok(Self { workload, compiled })
    }

    /// Arena entries shared by every grid point.
    pub fn segment_count(&self) -> usize {
        self.compiled.segment_count()
    }

    /// Evaluate a full grid against the shared arena — [`sweep`] minus
    /// the compile.
    pub fn run(&self, spec: &SweepSpec) -> SweepResult {
        let ctx = GridCtx::new(self, spec);
        let mut points = ctx.blank_points();
        points
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, pt)| ctx.eval(i, pt, None));
        ctx.finish(points, 0)
    }

    /// [`CompiledSweep::run`] in resumable chunks: adopt an
    /// already-evaluated grid prefix (`completed`, typically a parsed
    /// [`SweepCheckpoint`]), evaluate the rest `chunk` points at a time,
    /// and hand the full completed prefix to `on_checkpoint` after every
    /// chunk. Each grid point is a pure function of (workload, spec), so
    /// the result — and its serialized bytes — are identical for every
    /// (cursor, chunk size) combination, including the uninterrupted
    /// `completed = []` run. The cursor's point *keys* are verified
    /// against their grid slots; a mismatch is a typed error, never a
    /// silently wrong sweep.
    pub fn run_resumable(
        &self,
        spec: &SweepSpec,
        completed: &[SweepPoint],
        chunk: usize,
        on_checkpoint: &mut dyn FnMut(&[SweepPoint]),
    ) -> Result<SweepResult, SweepResumeError> {
        let ctx = GridCtx::new(self, spec);
        let mut points = ctx.blank_points();
        let total = points.len();
        if completed.len() > total {
            return Err(SweepResumeError::CursorBeyondGrid {
                completed: completed.len(),
                total,
            });
        }
        let key = |p: &SweepPoint| format!("{}/{}gpus/{}", p.calib, p.gpus, p.schedule);
        for (i, done) in completed.iter().enumerate() {
            let want = &points[i];
            if done.calib != want.calib || done.gpus != want.gpus || done.schedule != want.schedule
            {
                return Err(SweepResumeError::CursorMismatch {
                    index: i,
                    expected: key(want),
                    found: key(done),
                });
            }
            points[i] = done.clone();
        }
        let chunk = chunk.max(1);
        let mut hi = completed.len();
        while hi < total {
            let lo = hi;
            hi = (lo + chunk).min(total);
            points[lo..hi]
                .par_iter_mut()
                .enumerate()
                .for_each(|(j, pt)| ctx.eval(lo + j, pt, None));
            on_checkpoint(&points[..hi]);
        }
        Ok(ctx.finish(points, 0))
    }
}

/// Resumable sweep over a fresh compile — the one-shot convenience form
/// of [`CompiledSweep::run_resumable`].
pub fn sweep_resumable(
    workload: &RecordedWorkload,
    spec: &SweepSpec,
    completed: &[SweepPoint],
    chunk: usize,
    on_checkpoint: &mut dyn FnMut(&[SweepPoint]),
) -> Result<SweepResult, SweepResumeError> {
    CompiledSweep::compile(workload)?.run_resumable(spec, completed, chunk, on_checkpoint)
}

/// The static pre-flight context threaded through [`GridCtx::eval`] by
/// [`sweep_preflight`].
struct Preflight<'a> {
    nodes: &'a [Vec<RankTrace>],
    deadlock: Option<String>,
    rejected: &'a std::sync::atomic::AtomicUsize,
}

/// Everything one grid evaluation needs: the shared arena, one cost
/// table per calibration, and the spec. Both the all-at-once fan-out and
/// the chunked resumable path go through the same [`GridCtx::eval`] and
/// [`GridCtx::finish`], which is what makes them bit-identical.
struct GridCtx<'a> {
    spec: &'a SweepSpec,
    meta: &'a RecordMeta,
    compiled: &'a CompiledWorkload,
    /// One cost table per calibration, shared across the gpus × schedule
    /// sub-grid. A broken calibration poisons only its own points.
    tables: Vec<Result<Vec<CSeg>, EngineError>>,
    per_calib: usize,
    nodes: usize,
}

impl<'a> GridCtx<'a> {
    fn new(cs: &'a CompiledSweep<'_>, spec: &'a SweepSpec) -> Self {
        let meta = &cs.workload.meta;
        let tables = spec
            .calibs
            .iter()
            .map(|c| cs.compiled.cost_table(&c.node.gpu, &reprice_for(meta, c)))
            .collect();
        GridCtx {
            spec,
            meta,
            compiled: &cs.compiled,
            tables,
            per_calib: spec.gpus.len() * spec.schedules.len(),
            nodes: cs.workload.nodes.len().max(1),
        }
    }

    /// Pre-allocate every point in grid order (calibration-major); the
    /// parallel fan-out writes only its own slot, so output order — and
    /// therefore the serialized result — is thread-count-independent.
    fn blank_points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.spec.point_count());
        for c in &self.spec.calibs {
            for &g in &self.spec.gpus {
                for &s in &self.spec.schedules {
                    points.push(SweepPoint {
                        calib: c.name.clone(),
                        gpus: g,
                        schedule: s,
                        lower_bound: 0.0,
                        makespan: None,
                        cost: None,
                        pruned: false,
                        error: None,
                    });
                }
            }
        }
        points
    }

    fn eval(&self, i: usize, pt: &mut SweepPoint, pre: Option<&Preflight<'_>>) {
        let calib = &self.spec.calibs[i / self.per_calib];
        let costs = match &self.tables[i / self.per_calib] {
            Ok(t) => t,
            Err(e) => {
                pt.error = Some(e.to_string());
                return;
            }
        };
        pt.lower_bound = lower_bound(self.compiled, costs, pt.gpus, self.meta.overlap_transfers);
        if let Some(deadline) = self.spec.deadline {
            if pt.lower_bound > deadline {
                pt.pruned = true;
                return;
            }
        }
        if let Some(pre) = pre {
            // Same order as the engine: the OOM admission check runs
            // before the first event, a deadlock only after replaying
            // to quiescence.
            let verdict = crate::analyze::predict_oom(pre.nodes, calib.node.gpu.mem_bytes, pt.gpus)
                .map(|e| e.to_string())
                .or_else(|| pre.deadlock.clone());
            if let Some(e) = verdict {
                pt.error = Some(e);
                pre.rejected
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return;
            }
        }
        let cfg = NodeConfig {
            calib: calib.node,
            gpus: pt.gpus,
            mps: self.meta.mps,
            schedule: pt.schedule,
            overlap_transfers: self.meta.overlap_transfers,
        };
        match simulate_compiled(self.compiled, costs, &cfg, false) {
            Ok(out) => {
                let makespan = out.wall_seconds();
                pt.makespan = Some(makespan);
                pt.cost = Some(
                    self.nodes as f64
                        * pt.gpus as f64
                        * relative_node_price(&calib.node, &calib.net)
                        * makespan,
                );
            }
            Err(e) => pt.error = Some(e.to_string()),
        }
    }

    fn finish(&self, points: Vec<SweepPoint>, rejected: usize) -> SweepResult {
        let pareto = pareto_front(&points);
        let best_under_deadline = self.spec.deadline.and_then(|d| {
            points
                .iter()
                .enumerate()
                .filter(|(_, p)| p.makespan.is_some_and(|m| m <= d))
                .min_by(|(ai, a), (bi, b)| {
                    (a.cost, a.makespan, ai)
                        .partial_cmp(&(b.cost, b.makespan, bi))
                        .expect("evaluated points have finite cost/makespan")
                })
                .map(|(i, _)| i)
        });
        let evaluated = points.iter().filter(|p| p.makespan.is_some()).count();
        let pruned = points.iter().filter(|p| p.pruned).count();
        SweepResult {
            points,
            pareto,
            best_under_deadline,
            deadline: self.spec.deadline,
            compiled_segments: self.compiled.segment_count(),
            evaluated,
            pruned,
            rejected,
        }
    }
}

/// Indices of the non-dominated evaluated points over (makespan, cost):
/// no other evaluated point is ≤ on both axes and < on at least one.
/// Sorted by makespan ascending (ties: cost, then grid index) so the
/// front reads as a frontier.
fn pareto_front(points: &[SweepPoint]) -> Vec<usize> {
    let evaluated: Vec<(usize, f64, f64)> = points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| Some((i, p.makespan?, p.cost?)))
        .collect();
    let mut front: Vec<usize> = evaluated
        .iter()
        .filter(|&&(_, m, c)| {
            !evaluated
                .iter()
                .any(|&(_, om, oc)| om <= m && oc <= c && (om < m || oc < c))
        })
        .map(|&(i, _, _)| i)
        .collect();
    front.sort_by(|&a, &b| {
        (points[a].makespan, points[a].cost, a)
            .partial_cmp(&(points[b].makespan, points[b].cost, b))
            .expect("front points have finite makespan/cost")
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelProfile;
    use crate::trace::{Segment, TransferDir};

    fn sample_workload() -> RecordedWorkload {
        let mk = |f: f64| RankTrace {
            segments: vec![
                Segment::Host {
                    seconds: 0.002 * f,
                    label: "serial".into(),
                },
                Segment::Transfer {
                    bytes: 5e7 * f,
                    dir: TransferDir::HostToDevice,
                    label: "accel_data_update_device".into(),
                },
                Segment::Kernel {
                    profile: KernelProfile::uniform("k", 1e7, 40.0 * f, 8.0),
                    dispatch: 1e-5,
                },
                Segment::DeviceAlloc { seconds: 1e-4 },
                Segment::Collective {
                    seconds: 1e-3,
                    bytes: 1e6,
                    label: "mpi_allreduce".into(),
                },
            ],
            events: Vec::new(),
            peak_device_bytes: 1 << 30,
        };
        RecordedWorkload {
            meta: RecordMeta {
                label: "sweep test".into(),
                total_ranks: 8,
                ..RecordMeta::default()
            },
            nodes: vec![vec![mk(1.0), mk(1.4), mk(1.8), mk(2.2)]; 2],
        }
    }

    #[test]
    fn grid_order_is_calibration_major() {
        let w = sample_workload();
        let spec = SweepSpec {
            calibs: vec![
                SweepCalib::resolve("identity", &w.meta).unwrap(),
                SweepCalib::resolve("h100", &w.meta).unwrap(),
            ],
            gpus: vec![2, 4],
            schedules: vec![SchedulePolicyKind::Auto, SchedulePolicyKind::Fifo],
            deadline: None,
        };
        assert_eq!(spec.point_count(), 8);
        let res = sweep(&w, &spec).unwrap();
        let keys: Vec<(String, u32, String)> = res
            .points
            .iter()
            .map(|p| (p.calib.clone(), p.gpus, p.schedule.to_string()))
            .collect();
        assert_eq!(keys[0], ("identity".into(), 2, "auto".into()));
        assert_eq!(keys[1], ("identity".into(), 2, "fifo".into()));
        assert_eq!(keys[2], ("identity".into(), 4, "auto".into()));
        assert_eq!(keys[4], ("h100".into(), 2, "auto".into()));
        assert_eq!(res.evaluated, 8);
        assert_eq!(res.pruned, 0);
    }

    #[test]
    fn identity_point_matches_replay_identity_bitwise() {
        let w = sample_workload();
        let spec = SweepSpec::default_grid(&w.meta);
        let res = sweep(&w, &spec).unwrap();
        let id = res
            .points
            .iter()
            .find(|p| p.calib == "identity")
            .expect("identity in default grid");
        let oracle = w.replay_identity().unwrap().cluster.wall_seconds;
        assert_eq!(id.makespan.unwrap().to_bits(), oracle.to_bits());
    }

    #[test]
    fn preset_points_match_standalone_replay_bitwise() {
        let w = sample_workload();
        for name in ["h100", "a100-nvlink", "slingshot11"] {
            let calib = SweepCalib::resolve(name, &w.meta).unwrap();
            let spec = SweepSpec {
                calibs: vec![calib.clone()],
                gpus: vec![2],
                schedules: vec![w.meta.schedule],
                deadline: None,
            };
            let res = sweep(&w, &spec).unwrap();
            let standalone = w
                .replay(&calib.node, &calib.net, Some(2))
                .unwrap()
                .cluster
                .wall_seconds;
            assert_eq!(
                res.points[0].makespan.unwrap().to_bits(),
                standalone.to_bits(),
                "{name}"
            );
        }
    }

    #[test]
    fn lower_bound_never_exceeds_makespan() {
        let w = sample_workload();
        let mut spec = SweepSpec::default_grid(&w.meta);
        spec.gpus = vec![1, 2, 4];
        spec.schedules = vec![
            SchedulePolicyKind::Auto,
            SchedulePolicyKind::TimeSliced,
            SchedulePolicyKind::Fifo,
        ];
        let res = sweep(&w, &spec).unwrap();
        for p in &res.points {
            let m = p.makespan.expect("all points evaluate");
            assert!(
                p.lower_bound <= m * (1.0 + 1e-12),
                "{} gpus={} {}: bound {} > makespan {m}",
                p.calib,
                p.gpus,
                p.schedule,
                p.lower_bound
            );
            assert!(p.lower_bound > 0.0);
        }
    }

    #[test]
    fn deadline_prunes_only_provably_infeasible_points() {
        let w = sample_workload();
        // An unpruned reference run supplies the true makespans.
        let mut spec = SweepSpec::default_grid(&w.meta);
        spec.gpus = vec![1, 4];
        let all = sweep(&w, &spec).unwrap();
        // Set the deadline just below the largest lower bound: the pruner
        // must fire on at least that point, and only on points whose true
        // makespan really misses the deadline.
        let makespans: Vec<f64> = all.points.iter().map(|p| p.makespan.unwrap()).collect();
        let max_lb = all.points.iter().map(|p| p.lower_bound).fold(0.0, f64::max);
        let deadline = max_lb * 0.99;
        spec.deadline = Some(deadline);
        let res = sweep(&w, &spec).unwrap();
        assert!(res.pruned > 0, "deadline {deadline} pruned nothing");
        for (p, &true_makespan) in res.points.iter().zip(&makespans) {
            if p.pruned {
                // Soundness: a pruned point really cannot meet the deadline.
                assert!(p.lower_bound > deadline);
                assert!(
                    true_makespan > deadline,
                    "{} gpus={}: pruned but feasible ({true_makespan} <= {deadline})",
                    p.calib,
                    p.gpus
                );
            }
        }
        if makespans.iter().any(|&m| m <= deadline) {
            let best = res.best_under_deadline.expect("some point meets it");
            assert!(res.points[best].makespan.unwrap() <= deadline);
        } else {
            assert!(res.best_under_deadline.is_none());
        }
    }

    #[test]
    fn pareto_front_has_no_dominated_member() {
        let w = sample_workload();
        let mut spec = SweepSpec::default_grid(&w.meta);
        spec.gpus = vec![1, 2, 4];
        let res = sweep(&w, &spec).unwrap();
        assert!(!res.pareto.is_empty());
        for &i in &res.pareto {
            let (m, c) = (res.points[i].makespan.unwrap(), res.points[i].cost.unwrap());
            for p in &res.points {
                let (om, oc) = (p.makespan.unwrap(), p.cost.unwrap());
                assert!(
                    !(om <= m && oc <= c && (om < m || oc < c)),
                    "front point {i} dominated by {}/{}",
                    p.calib,
                    p.gpus
                );
            }
        }
        // Front is sorted by makespan.
        let ms: Vec<f64> = res
            .pareto
            .iter()
            .map(|&i| res.points[i].makespan.unwrap())
            .collect();
        assert!(ms.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn per_point_oom_does_not_abort_the_sweep() {
        let mut w = sample_workload();
        for trace in w.nodes.iter_mut().flatten() {
            trace.peak_device_bytes = 30 << 30; // ~30 GB per rank
        }
        // 4 ranks on 1 GPU cannot fit; on 4 GPUs they can.
        let spec = SweepSpec {
            calibs: vec![SweepCalib::resolve("identity", &w.meta).unwrap()],
            gpus: vec![1, 4],
            schedules: vec![SchedulePolicyKind::Auto],
            deadline: None,
        };
        let res = sweep(&w, &spec).unwrap();
        assert!(res.points[0].error.as_deref().unwrap().contains("memory"));
        assert!(res.points[0].makespan.is_none());
        assert!(res.points[1].makespan.is_some());
        assert_eq!(res.evaluated, 1);
        // The errored point cannot be on the front.
        assert_eq!(res.pareto, vec![1]);
    }

    #[test]
    fn preflight_is_bit_identical_on_grids_with_oom_points() {
        let mut w = sample_workload();
        for trace in w.nodes.iter_mut().flatten() {
            trace.peak_device_bytes = 30 << 30;
        }
        // gpus=1 stacks 4 ranks (~120 GB) on one device: infeasible
        // under both the 40 GB identity calibration and the 80 GB h100.
        let spec = SweepSpec {
            calibs: vec![
                SweepCalib::resolve("identity", &w.meta).unwrap(),
                SweepCalib::resolve("h100", &w.meta).unwrap(),
            ],
            gpus: vec![1, 4],
            schedules: vec![SchedulePolicyKind::Auto],
            deadline: None,
        };
        let full = sweep(&w, &spec).unwrap();
        let pre = sweep_preflight(&w, &spec).unwrap();
        assert_eq!(full.rejected, 0);
        assert_eq!(pre.rejected, 2);
        assert_eq!(pre.evaluated, full.evaluated);
        // The acceptance bar: identical serialized output, down to the
        // error text on the statically-rejected points.
        assert_eq!(full.to_jsonl(), pre.to_jsonl());
    }

    #[test]
    fn preflight_is_bit_identical_on_deadlocking_workloads() {
        let mut w = sample_workload();
        // One extra collective on rank 0 makes the job ragged: every
        // grid point now deadlocks at replay time.
        w.nodes[0][0].segments.push(Segment::Collective {
            seconds: 1e-3,
            bytes: 1e6,
            label: "mpi_allreduce".into(),
        });
        let spec = SweepSpec {
            calibs: vec![SweepCalib::resolve("identity", &w.meta).unwrap()],
            gpus: vec![2, 4],
            schedules: vec![SchedulePolicyKind::Auto, SchedulePolicyKind::Fifo],
            deadline: None,
        };
        let full = sweep(&w, &spec).unwrap();
        let pre = sweep_preflight(&w, &spec).unwrap();
        assert_eq!(pre.rejected, spec.point_count());
        assert!(full
            .points
            .iter()
            .all(|p| p.error.as_deref().is_some_and(|e| e.contains("deadlock"))));
        assert_eq!(full.to_jsonl(), pre.to_jsonl());
    }

    #[test]
    fn preflight_is_a_no_op_on_clean_grids() {
        let w = sample_workload();
        let spec = SweepSpec::default_grid(&w.meta);
        let full = sweep(&w, &spec).unwrap();
        let pre = sweep_preflight(&w, &spec).unwrap();
        assert_eq!(pre.rejected, 0);
        assert_eq!(full.to_jsonl(), pre.to_jsonl());
    }

    #[test]
    fn jsonl_carries_every_point_in_grid_order() {
        let w = sample_workload();
        let mut spec = SweepSpec::default_grid(&w.meta);
        spec.deadline = Some(1e-9); // prune everything
        let res = sweep(&w, &spec).unwrap();
        assert_eq!(res.evaluated, 0);
        assert_eq!(res.pruned, res.points.len());
        let text = res.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), res.points.len() + 1);
        assert!(lines[0].contains("\"type\":\"sweep\""));
        assert!(lines[1].contains("\"calib\":\"identity\""));
        assert!(lines[1].contains("\"pruned\":true"));
        assert!(lines[1].contains("\"makespan\":null"));
    }

    #[test]
    fn grid_parsers_accept_lists_and_ranges() {
        let meta = RecordMeta::default();
        assert_eq!(parse_gpus("2..4,8").unwrap(), vec![2, 3, 4, 8]);
        assert_eq!(parse_gpus("1").unwrap(), vec![1]);
        assert!(parse_gpus("0").is_err());
        assert!(parse_gpus("4..2").is_err());
        assert!(parse_gpus("x").is_err());

        let calibs = parse_calibs("identity, h100", &meta).unwrap();
        assert_eq!(calibs.len(), 2);
        assert_eq!(calibs[1].name, "h100");
        let err = parse_calibs("nope", &meta).unwrap_err();
        assert!(err.contains("valid presets"), "{err}");

        let scheds = parse_schedules("auto,fifo").unwrap();
        assert_eq!(
            scheds,
            vec![SchedulePolicyKind::Auto, SchedulePolicyKind::Fifo]
        );
        assert!(parse_schedules("bogus").is_err());

        let spec = SweepSpec::parse_grid("gpus=1,2;calib=identity;schedule=mps", &meta).unwrap();
        assert_eq!(spec.point_count(), 2);
        assert!(SweepSpec::parse_grid("nope=1", &meta).is_err());
        assert!(SweepSpec::parse_grid("gpus", &meta).is_err());
        // Empty spec keeps the defaults.
        let spec = SweepSpec::parse_grid("", &meta).unwrap();
        assert_eq!(spec.calibs.len(), 1 + presets().len());
    }

    #[test]
    fn resumable_sweep_is_bit_identical_from_every_cursor() {
        let w = sample_workload();
        let mut spec = SweepSpec::default_grid(&w.meta);
        spec.gpus = vec![1, 2, 4];
        spec.schedules = vec![SchedulePolicyKind::Auto, SchedulePolicyKind::Fifo];
        let oracle = sweep(&w, &spec).unwrap().to_jsonl();
        let total = spec.point_count();
        let cs = CompiledSweep::compile(&w).unwrap();
        for chunk in [1, 3, 7, total, total + 5] {
            // Uninterrupted chunked run.
            let mut cursors: Vec<Vec<SweepPoint>> = Vec::new();
            let res = cs
                .run_resumable(&spec, &[], chunk, &mut |pts| cursors.push(pts.to_vec()))
                .unwrap();
            assert_eq!(res.to_jsonl(), oracle, "chunk={chunk}");
            assert_eq!(cursors.last().unwrap().len(), total);
            // Resume from every cursor the run surfaced: still identical.
            for cur in &cursors {
                let resumed = cs.run_resumable(&spec, cur, chunk, &mut |_| {}).unwrap();
                assert_eq!(
                    resumed.to_jsonl(),
                    oracle,
                    "cursor={} chunk={chunk}",
                    cur.len()
                );
            }
        }
    }

    #[test]
    fn checkpoint_round_trips_and_guards_its_shape() {
        let w = sample_workload();
        let mut spec = SweepSpec::default_grid(&w.meta);
        spec.gpus = vec![1, 2];
        let res = sweep(&w, &spec).unwrap();
        let ck = SweepCheckpoint {
            total: res.points.len(),
            digest: sweep_digest(&w, &spec),
            points: res.points[..3].to_vec(),
        };
        let back = SweepCheckpoint::parse_jsonl(&ck.to_jsonl()).unwrap();
        assert_eq!(back, ck);
        // Every parsed point re-serializes byte-identically.
        for (a, b) in ck.points.iter().zip(&back.points) {
            assert_eq!(a.to_json(false), b.to_json(false));
        }
        // Torn file: declared count disagrees with carried lines.
        let mut torn = ck.to_jsonl();
        torn.truncate(torn.trim_end().rfind('\n').unwrap() + 1);
        let err = SweepCheckpoint::parse_jsonl(&torn).unwrap_err();
        assert!(err.to_string().contains("declares 3"), "{err}");
        // Wrong version and non-checkpoint headers are typed errors too.
        assert!(SweepCheckpoint::parse_jsonl("{\"type\":\"sweep\"}").is_err());
        assert!(SweepCheckpoint::parse_jsonl(
            "{\"type\":\"sweep_checkpoint\",\"version\":2,\"digest\":0,\"total\":0,\"completed\":0}\n"
        )
        .is_err());
    }

    #[test]
    fn resume_refuses_a_cursor_for_a_different_grid() {
        let w = sample_workload();
        let spec = SweepSpec {
            calibs: vec![SweepCalib::resolve("identity", &w.meta).unwrap()],
            gpus: vec![1, 2],
            schedules: vec![SchedulePolicyKind::Auto],
            deadline: None,
        };
        let res = sweep(&w, &spec).unwrap();
        // Swapped axis order: point 0 claims gpus=2 where the grid has 1.
        let mut wrong = res.points.clone();
        wrong.reverse();
        let err = sweep_resumable(&w, &spec, &wrong, 8, &mut |_| {}).unwrap_err();
        assert!(
            matches!(err, SweepResumeError::CursorMismatch { index: 0, .. }),
            "{err}"
        );
        // Oversized cursor.
        let mut long = res.points.clone();
        long.extend(res.points.iter().cloned());
        let err = sweep_resumable(&w, &spec, &long, 8, &mut |_| {}).unwrap_err();
        assert!(
            matches!(err, SweepResumeError::CursorBeyondGrid { .. }),
            "{err}"
        );
        // Digest separates specs sharing a workload.
        let mut other = spec.clone();
        other.gpus = vec![1, 2, 4];
        assert_ne!(sweep_digest(&w, &spec), sweep_digest(&w, &other));
        assert_eq!(sweep_digest(&w, &spec), sweep_digest(&w, &spec.clone()));
    }

    #[test]
    fn presets_rescale_with_the_recording() {
        let meta = RecordMeta {
            work_scale: 1e-3,
            ..RecordMeta::default()
        };
        let c = SweepCalib::resolve("h100", &meta).unwrap();
        let paper = preset("h100").unwrap();
        assert_eq!(
            c.node.gpu.launch_latency,
            paper.node.gpu.launch_latency * 1e-3
        );
        // Physical rates are scale-free.
        assert_eq!(c.node.gpu.fp64_peak, paper.node.gpu.fp64_peak);
        assert!(SweepCalib::resolve("bogus", &meta).is_err());
    }
}
