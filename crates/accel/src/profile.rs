//! Kernel work descriptors and the device-time cost function.

use crate::calib::{CpuCalib, DeviceCalib};

/// A description of the work one kernel launch performs, from which the
/// simulator derives execution time on any modelled processor.
///
/// Frameworks fill this in per launch: the `offload` crate from its launch
/// bounds and per-item annotations, `arrayjit` from the compiled program's
/// op graph (fused elementwise chains report their aggregate flops/bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// A stable kernel name for per-kernel accounting (Fig. 6).
    pub name: String,
    /// Independent parallel work items exposed to the device (after loop
    /// collapsing / vmap batching).
    pub items: f64,
    /// Useful double-precision operations per item.
    pub flops_per_item: f64,
    /// Device-memory bytes touched per item (reads + writes, post-fusion).
    pub bytes_per_item: f64,
    /// Branch-divergence multiplier ≥ 1: the factor by which SIMT lockstep
    /// execution inflates the compute time (fraction of divergent lanes ×
    /// number of serialised paths). 1.0 for straight-line kernels.
    pub divergence: f64,
}

impl KernelProfile {
    /// A convenience constructor for a uniform (non-divergent) kernel.
    pub fn uniform(name: impl Into<String>, items: f64, flops: f64, bytes: f64) -> Self {
        Self {
            name: name.into(),
            items,
            flops_per_item: flops,
            bytes_per_item: bytes,
            divergence: 1.0,
        }
    }

    /// Total floating-point operations.
    #[inline]
    pub fn total_flops(&self) -> f64 {
        self.items * self.flops_per_item
    }

    /// Total device-memory traffic in bytes.
    #[inline]
    pub fn total_bytes(&self) -> f64 {
        self.items * self.bytes_per_item
    }

    /// Device-seconds this kernel needs on a *fully utilised* device: the
    /// roofline maximum of compute time and memory time, inflated by
    /// divergence on the compute axis.
    pub fn device_seconds(&self, gpu: &DeviceCalib) -> f64 {
        device_seconds_raw(
            self.items,
            self.flops_per_item,
            self.bytes_per_item,
            self.divergence,
            gpu,
        )
    }

    /// The fraction of the device this kernel can occupy on its own:
    /// a kernel exposing fewer items than the device has resident lanes
    /// cannot fill it, which is the mechanism behind the paper's
    /// oversubscription benefit (two processes per GPU beat one).
    pub fn solo_utilization(&self, gpu: &DeviceCalib) -> f64 {
        solo_utilization_raw(self.items, gpu)
    }

    /// Wall-clock seconds when this kernel runs alone on the device.
    pub fn solo_seconds(&self, gpu: &DeviceCalib) -> f64 {
        let u = self.solo_utilization(gpu).max(1e-6);
        self.device_seconds(gpu) / u
    }

    /// Seconds on `threads` host cores (the CPU baseline path). Branch
    /// divergence does not penalise a MIMD CPU; memory traffic contends on
    /// the shared socket bandwidth.
    pub fn cpu_seconds(&self, cpu: &CpuCalib, threads: u32) -> f64 {
        let threads = threads.max(1) as f64;
        // Thread-team scaling penalty (sync barriers, NUMA).
        let team = 1.0 + cpu.thread_overhead * threads.log2();
        let compute = self.total_flops() / (cpu.core_flops * threads) * team;
        // Memory bandwidth is a socket resource shared by every rank on
        // the node: a rank's share is proportional to its thread count, so
        // per-rank memory time is consistent across process decompositions
        // (threads x processes is constant in the paper's Fig. 4 sweep).
        let eff_bw = cpu.socket_bw * (threads / cpu.cores as f64).min(1.0);
        let memory = self.total_bytes() / eff_bw * team;
        compute.max(memory)
    }
}

/// The roofline device-time cost from raw quantities, shared between the
/// live [`KernelProfile`] path and the engine's compiled cost tables so the
/// two produce bitwise-identical charges for the same inputs.
#[inline]
pub(crate) fn device_seconds_raw(
    items: f64,
    flops_per_item: f64,
    bytes_per_item: f64,
    divergence: f64,
    gpu: &DeviceCalib,
) -> f64 {
    let compute = items * flops_per_item / gpu.fp64_peak * divergence;
    let memory = items * bytes_per_item / gpu.hbm_bw;
    compute.max(memory)
}

/// Solo occupancy from raw quantities; see [`KernelProfile::solo_utilization`].
#[inline]
pub(crate) fn solo_utilization_raw(items: f64, gpu: &DeviceCalib) -> f64 {
    (items / gpu.saturation_items).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> DeviceCalib {
        DeviceCalib::default()
    }

    fn cpu() -> CpuCalib {
        CpuCalib::default()
    }

    #[test]
    fn roofline_picks_the_binding_resource() {
        // Compute-bound kernel: many flops, few bytes.
        let k = KernelProfile::uniform("cb", 1e7, 1e4, 8.0);
        assert!((k.device_seconds(&gpu()) - k.total_flops() / gpu().fp64_peak).abs() < 1e-12);
        // Memory-bound kernel: few flops, many bytes.
        let k = KernelProfile::uniform("mb", 1e7, 1.0, 64.0);
        assert!((k.device_seconds(&gpu()) - k.total_bytes() / gpu().hbm_bw).abs() < 1e-15);
    }

    #[test]
    fn divergence_only_hurts_compute() {
        let base = KernelProfile::uniform("d", 1e7, 1e3, 8.0);
        let mut div = base.clone();
        div.divergence = 4.0;
        assert!((div.device_seconds(&gpu()) / base.device_seconds(&gpu()) - 4.0).abs() < 1e-9);
        // CPU time is unaffected by divergence.
        assert_eq!(div.cpu_seconds(&cpu(), 8), base.cpu_seconds(&cpu(), 8));
    }

    #[test]
    fn small_kernels_cannot_fill_the_device() {
        let small = KernelProfile::uniform("s", 1e3, 1e3, 8.0);
        let big = KernelProfile::uniform("b", 1e7, 1e3, 8.0);
        assert!(small.solo_utilization(&gpu()) < 0.01);
        assert!((big.solo_utilization(&gpu()) - 1.0).abs() < 1e-12);
        // Solo wall time of the small kernel is inflated accordingly.
        assert!(small.solo_seconds(&gpu()) > 50.0 * small.device_seconds(&gpu()));
    }

    #[test]
    fn cpu_scales_with_threads_when_compute_bound() {
        let k = KernelProfile::uniform("c", 1e6, 1e4, 8.0);
        let t1 = k.cpu_seconds(&cpu(), 1);
        let t64 = k.cpu_seconds(&cpu(), 64);
        let speedup = t1 / t64;
        // 64x the cores, divided by the thread-team penalty (~1.7 at 64).
        assert!(speedup > 30.0, "speedup {speedup}");
    }

    #[test]
    fn cpu_memory_bandwidth_shares_by_thread_count() {
        // Memory-bound kernel: a rank with 16 of 64 threads gets a quarter
        // of the socket bandwidth.
        let k = KernelProfile::uniform("m", 1e8, 0.5, 64.0);
        let t16 = k.cpu_seconds(&cpu(), 16);
        let t64 = k.cpu_seconds(&cpu(), 64);
        // 4x bandwidth share, modulated by the team penalty ratio.
        let team = |t: f64| 1.0 + cpu().thread_overhead * t.log2();
        let expected = 4.0 * team(16.0) / team(64.0);
        assert!((t16 / t64 - expected).abs() < 0.05, "ratio {}", t16 / t64);
    }

    #[test]
    fn gpu_beats_cpu_on_big_compute_kernels() {
        let k = KernelProfile::uniform("big", 1e8, 200.0, 48.0);
        let gpu_t = k.solo_seconds(&gpu());
        let cpu_t = k.cpu_seconds(&cpu(), 64);
        assert!(cpu_t / gpu_t > 5.0, "GPU speedup {}", cpu_t / gpu_t);
    }
}
