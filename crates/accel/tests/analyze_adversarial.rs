//! Adversarial corpus for the static analyzer — the differential
//! soundness suite.
//!
//! Each corpus entry is a workload built to fail at replay time in one
//! specific way (deadlock, OOM, non-finite derived cost). The suite
//! checks both directions of the analyzer's contract:
//!
//! * **completeness on the corpus** — every runtime failure is
//!   diagnosed statically, with the right code, the right locus, and
//!   (for the exact passes) the *same error text* the replay produced;
//! * **soundness** — every workload the analyzer admits (no
//!   error-severity findings) replays to completion.
//!
//! A property test closes the loop: starting from any analyzer-clean
//! symmetric workload, removing a single collective from one rank
//! always trips the barrier pass.

use accel_sim::whatif::{RecordMeta, RecordedWorkload};
use accel_sim::{
    check_workload, Code, EngineError, KernelProfile, RankTrace, Segment, Severity, TransferDir,
};
use proptest::prelude::*;

fn host(seconds: f64) -> Segment {
    Segment::Host {
        seconds,
        label: "h".into(),
    }
}

fn kernel(items: f64) -> Segment {
    Segment::Kernel {
        profile: KernelProfile::uniform("k", items, 20.0, 8.0),
        dispatch: 1e-5,
    }
}

fn transfer(bytes: f64) -> Segment {
    Segment::Transfer {
        bytes,
        dir: TransferDir::HostToDevice,
        label: "h2d".into(),
    }
}

fn coll(label: &str) -> Segment {
    Segment::Collective {
        seconds: 1e-3,
        bytes: 1e6,
        label: label.into(),
    }
}

fn rank(segments: Vec<Segment>, peak: u64) -> RankTrace {
    RankTrace {
        segments,
        peak_device_bytes: peak,
        ..RankTrace::default()
    }
}

fn workload(nodes: Vec<Vec<RankTrace>>) -> RecordedWorkload {
    RecordedWorkload {
        meta: RecordMeta::default(),
        nodes,
    }
}

/// The runtime verdict for a workload under its own recorded
/// calibration — the oracle the analyzer is judged against.
fn replay_verdict(w: &RecordedWorkload) -> Result<(), EngineError> {
    w.replay_identity().map(|_| ())
}

// ---------------------------------------------------------------------
// Corpus: each entry must fail at runtime AND be flagged statically.
// ---------------------------------------------------------------------

/// Ragged collective counts: rank 0 performs two allreduces, rank 1
/// performs one. The replay deadlocks; the analyzer's B001 carries the
/// exact runtime error text and points at the orphaned collective.
#[test]
fn corpus_deadlock_is_predicted_with_the_runtime_error_text() {
    let w = workload(vec![vec![
        rank(vec![host(1e-3), coll("a"), coll("b")], 0),
        rank(vec![host(1e-3), coll("a")], 0),
    ]]);

    let err = replay_verdict(&w).expect_err("ragged job deadlocks at replay");
    assert!(matches!(err, EngineError::Deadlock { .. }));

    let report = check_workload(&w);
    assert!(!report.is_clean());
    let b001 = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::CollectiveMismatch)
        .expect("B001 present");
    assert_eq!(b001.severity, Severity::Error);
    assert_eq!(b001.message, err.to_string(), "shared formatting path");
    assert_eq!(b001.locus.rank, Some(0));
    assert_eq!(b001.locus.segment, Some(2));
    assert_eq!(b001.locus.label.as_deref(), Some("b"));
}

/// Co-located peaks exceed device memory. The replay OOMs at admission;
/// the analyzer's M001 names the same GPU with the same error text.
#[test]
fn corpus_oom_is_predicted_on_the_same_gpu() {
    // meta defaults: 4 GPUs per node, 40 GB each. Five ranks put ranks
    // {0, 4} on GPU 0: 30 GB + 20 GB overflows its 40 GB.
    let gb = 1u64 << 30;
    let w = workload(vec![vec![
        rank(vec![host(1e-3), kernel(1e6)], 30 * gb),
        rank(vec![host(1e-3), kernel(1e6)], gb),
        rank(vec![host(1e-3), kernel(1e6)], gb),
        rank(vec![host(1e-3), kernel(1e6)], gb),
        rank(vec![host(1e-3), kernel(1e6)], 20 * gb),
    ]]);

    let err = replay_verdict(&w).expect_err("stacked peaks OOM at admission");
    let oom = err.as_oom().expect("an Oom error");
    assert_eq!(oom.gpu, 0);

    let report = check_workload(&w);
    let m001 = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::OomPredicted)
        .expect("M001 present");
    assert_eq!(m001.locus.gpu, Some(0));
    assert_eq!(m001.message, err.to_string(), "shared formatting path");
}

/// A recorded NaN charge: compile rejects it at replay; the analyzer's
/// C001 names the same rank/segment with the same error text.
#[test]
fn corpus_non_finite_recorded_charge_matches_the_compile_error() {
    let w = workload(vec![vec![rank(
        vec![host(1e-3), host(f64::NAN), kernel(1e6)],
        0,
    )]]);

    let err = replay_verdict(&w).expect_err("NaN charge fails compile");
    assert!(matches!(err, EngineError::NonFiniteCharge { .. }));

    let report = check_workload(&w);
    let c001 = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::NonFiniteCharge)
        .expect("C001 present");
    assert_eq!(c001.message, err.to_string(), "shared formatting path");
    assert_eq!(c001.locus.rank, Some(0));
    assert_eq!(c001.locus.segment, Some(1));
}

/// A finite recording priced by a degenerate calibration: the transfer
/// cost derives to infinity. The replay fails inside the cost table;
/// the analyzer's derived-cost check reports the same segment.
#[test]
fn corpus_calibration_induced_infinity_is_caught_before_replay() {
    let mut meta = RecordMeta::default();
    meta.node_calib.gpu.pcie_bw = 0.0;
    let w = RecordedWorkload {
        meta,
        nodes: vec![vec![rank(vec![host(1e-3), transfer(1e6)], 0)]],
    };

    let err = replay_verdict(&w).expect_err("zero PCIe bandwidth prices h2d as infinite");
    assert!(matches!(err, EngineError::NonFiniteCharge { .. }));

    let report = check_workload(&w);
    assert!(!report.is_clean());
    let c001 = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::NonFiniteCharge)
        .expect("C001 present");
    assert_eq!(c001.locus.label.as_deref(), Some("h2d"));
    // The degenerate calibration itself is flagged too (S005), so the
    // report explains the cause, not just the symptom.
    assert!(report.has(Code::DegenerateCalib));
}

/// A zero-byte transfer on an overlapped stream. The engine absorbs it
/// (runtime `StreamUnderflow` is defensively unreachable today: stream
/// accounting clamps the completion to its enqueue time), so this entry
/// asserts the analyzer flags the *risk* as a warning while the replay
/// still completes — C004 is advisory, not admission-blocking.
#[test]
fn corpus_stream_underflow_risk_warns_but_replays() {
    let meta = RecordMeta {
        overlap_transfers: true,
        ..RecordMeta::default()
    };
    let w = RecordedWorkload {
        meta,
        nodes: vec![vec![rank(vec![host(1e-3), transfer(0.0), kernel(1e6)], 0)]],
    };

    replay_verdict(&w).expect("the engine absorbs the empty transfer");

    let report = check_workload(&w);
    assert!(report.is_clean(), "C004 must not block admission");
    assert!(report.has(Code::StreamUnderflowRisk));
}

// ---------------------------------------------------------------------
// Differential soundness: analyzer-clean workloads replay cleanly, and
// every corpus failure above is the analyzer's responsibility.
// ---------------------------------------------------------------------

/// Every workload the analyzer admits must replay to completion; every
/// workload that fails replay must carry at least one error-severity
/// finding. One loop, both directions, over a mixed corpus.
#[test]
fn differential_soundness_over_the_mixed_corpus() {
    let gb = 1u64 << 30;
    let corpus: Vec<RecordedWorkload> = vec![
        // Clean: symmetric collectives, fitting peaks.
        workload(vec![vec![
            rank(vec![host(1e-3), kernel(1e6), coll("a")], gb),
            rank(vec![kernel(2e6), host(2e-3), coll("a")], gb),
        ]]),
        // Clean: no collectives at all.
        workload(vec![vec![
            rank(vec![host(1e-3), transfer(1e6)], gb),
            rank(vec![kernel(1e5)], gb),
        ]]),
        // Deadlock: cross-node ragged counts.
        workload(vec![
            vec![rank(vec![coll("a"), coll("b")], 0)],
            vec![rank(vec![coll("a")], 0)],
        ]),
        // OOM: one rank alone exceeds the device.
        workload(vec![vec![rank(vec![kernel(1e6)], 100 * gb)]]),
        // Corrupt: infinite kernel dispatch charge.
        workload(vec![vec![rank(
            vec![Segment::Kernel {
                profile: KernelProfile::uniform("k", 1e6, 20.0, 8.0),
                dispatch: f64::INFINITY,
            }],
            0,
        )]]),
    ];

    for (i, w) in corpus.iter().enumerate() {
        let static_clean = check_workload(w).is_clean();
        let runtime = replay_verdict(w);
        match runtime {
            Ok(()) => assert!(
                static_clean,
                "corpus[{i}]: replays cleanly but the analyzer rejected it"
            ),
            Err(e) => assert!(
                !static_clean,
                "corpus[{i}]: replay failed ({e}) but the analyzer admitted it"
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Property: breaking the symmetry of any clean workload trips the
// barrier pass.
// ---------------------------------------------------------------------

/// Per-rank segment recipe: (collectives to perform, host charge).
/// Depth starts at 2 so the mutant below stays a *participant* after
/// losing one collective — dropping a rank's only collective removes it
/// from the communicator entirely, which is legal (B003 territory, not
/// B001).
fn arb_shape() -> impl Strategy<Value = Vec<(u8, f64)>> {
    proptest::collection::vec((2u8..5, 1e-4..1e-1), 2usize..6)
}

proptest! {
    /// Start from a symmetric workload (every rank performs the maximum
    /// collective count — analyzer-clean by construction), then delete
    /// one collective from one rank. The barrier pass must flag the
    /// mutant with an error-severity B001, and the mutant must deadlock
    /// at replay with exactly the predicted error.
    #[test]
    fn removing_one_collective_always_trips_the_barrier_pass(
        shape in arb_shape(),
        victim_seed: u8,
    ) {
        let depth = shape.iter().map(|&(c, _)| c).max().unwrap() as usize;
        let ranks: Vec<RankTrace> = shape
            .iter()
            .map(|&(_, h)| {
                let mut segs = vec![host(h)];
                for s in 0..depth {
                    segs.push(coll(&format!("allreduce_{s}")));
                }
                rank(segs, 0)
            })
            .collect();
        let clean = workload(vec![ranks]);
        prop_assert!(check_workload(&clean).is_clean());
        prop_assert!(replay_verdict(&clean).is_ok());

        let victim = victim_seed as usize % clean.nodes[0].len();
        let mut mutant = clean;
        let segs = &mut mutant.nodes[0][victim].segments;
        let last_coll = segs
            .iter()
            .rposition(|s| matches!(s, Segment::Collective { .. }))
            .expect("every rank has collectives");
        segs.remove(last_coll);

        let report = check_workload(&mutant);
        prop_assert!(!report.is_clean());
        prop_assert!(report.has(Code::CollectiveMismatch));
        let b001 = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::CollectiveMismatch)
            .expect("B001 present");
        let err = replay_verdict(&mutant).expect_err("the mutant deadlocks");
        prop_assert_eq!(&b001.message, &err.to_string());
    }
}
