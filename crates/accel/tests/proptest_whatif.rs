//! Property-based tests for the what-if repricer ([`accel_sim::whatif`]).
//!
//! Repricing claims to answer "what would this recorded run cost on
//! better hardware?" — that is only trustworthy if the answer moves the
//! right way (faster hardware never makes a charge slower) and does not
//! depend on when you ask (replays are deterministic and the serialized
//! form is stable). These properties hold over the whole input space, not
//! just the calibrated presets.

use accel_sim::whatif::{solo_label_stats, RecordMeta, RecordedWorkload};
use accel_sim::{KernelProfile, NetCalib, NodeCalib, RankTrace, Segment, TransferDir};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = KernelProfile> {
    (1.0..1e9, 0.5..500.0, 0.5..64.0, 1.0..4.0).prop_map(|(items, flops, bytes, div)| {
        KernelProfile {
            name: "k".into(),
            items,
            flops_per_item: flops,
            bytes_per_item: bytes,
            divergence: div,
        }
    })
}

/// A compact segment spec the shim can sample: kind selector plus two
/// magnitudes, decoded by [`workload_from_specs`].
fn arb_segment() -> impl Strategy<Value = (u8, f64, f64)> {
    (0u8..5, 1e-6..1.0, 1.0..1e10)
}

fn decode_segment((kind, a, b): (u8, f64, f64)) -> Segment {
    match kind {
        0 => Segment::Host {
            seconds: a,
            label: "host".into(),
        },
        1 => Segment::Kernel {
            profile: KernelProfile {
                name: "k".into(),
                items: b,
                flops_per_item: 10.0 * a,
                bytes_per_item: 8.0,
                divergence: 1.0,
            },
            dispatch: a * 1e-3,
        },
        2 => Segment::Transfer {
            bytes: b,
            dir: TransferDir::HostToDevice,
            label: "h2d".into(),
        },
        3 => Segment::DeviceAlloc { seconds: a * 1e-2 },
        _ => Segment::Collective {
            seconds: a,
            bytes: b,
            label: "allreduce".into(),
        },
    }
}

fn workload_from_specs(specs: Vec<Vec<(u8, f64, f64)>>) -> RecordedWorkload {
    let mut ranks: Vec<RankTrace> = specs
        .into_iter()
        .map(|segs| RankTrace {
            segments: segs.into_iter().map(decode_segment).collect(),
            ..RankTrace::default()
        })
        .collect();
    // Barriers follow MPI semantics: every rank that performs
    // collectives must perform the same number of them or the replay
    // deadlocks. Pad short ranks with extra collectives so the
    // generated job is symmetric (raggedness is exercised by the
    // analyzer's adversarial suite, not here).
    let max_collectives = ranks
        .iter()
        .map(|r| {
            r.segments
                .iter()
                .filter(|s| matches!(s, Segment::Collective { .. }))
                .count()
        })
        .max()
        .unwrap_or(0);
    for rank in &mut ranks {
        let have = rank
            .segments
            .iter()
            .filter(|s| matches!(s, Segment::Collective { .. }))
            .count();
        for _ in have..max_collectives {
            rank.segments.push(decode_segment((4, 1e-3, 1e6)));
        }
    }
    RecordedWorkload {
        meta: RecordMeta {
            total_ranks: 8,
            ..RecordMeta::default()
        },
        nodes: vec![ranks],
    }
}

fn single_segment_workload(seg: Segment) -> RecordedWorkload {
    RecordedWorkload {
        meta: RecordMeta::default(),
        nodes: vec![vec![RankTrace {
            segments: vec![seg],
            ..RankTrace::default()
        }]],
    }
}

proptest! {
    /// Scaling the device's FP64 throughput up never increases a repriced
    /// kernel's solo time or the replayed makespan, for any kernel shape.
    #[test]
    fn faster_fp64_never_slows_kernels(profile in arb_profile(), factor in 1.0..50.0) {
        let w = single_segment_workload(Segment::Kernel {
            profile,
            dispatch: 1e-5,
        });
        let base = NodeCalib::default();
        let mut fast = base;
        fast.gpu.fp64_peak *= factor;
        let net = NetCalib::default();
        let t_base = solo_label_stats(&w.nodes, &base)["k"].seconds;
        let t_fast = solo_label_stats(&w.nodes, &fast)["k"].seconds;
        prop_assert!(t_fast <= t_base, "solo {t_fast} > {t_base} at x{factor}");
        let wall_base = w.replay(&base, &net, None).unwrap().cluster.wall_seconds;
        let wall_fast = w.replay(&fast, &net, None).unwrap().cluster.wall_seconds;
        prop_assert!(
            wall_fast <= wall_base,
            "wall {wall_fast} > {wall_base} at x{factor}"
        );
    }

    /// Scaling the host link bandwidth up never increases a repriced
    /// transfer's time or the replayed makespan.
    #[test]
    fn faster_link_never_slows_transfers(bytes in 1.0..1e11, factor in 1.0..50.0) {
        let w = single_segment_workload(Segment::Transfer {
            bytes,
            dir: TransferDir::DeviceToHost,
            label: "d2h".into(),
        });
        let base = NodeCalib::default();
        let mut fast = base;
        fast.gpu.pcie_bw *= factor;
        let net = NetCalib::default();
        let t_base = solo_label_stats(&w.nodes, &base)["d2h"].seconds;
        let t_fast = solo_label_stats(&w.nodes, &fast)["d2h"].seconds;
        prop_assert!(t_fast <= t_base, "solo {t_fast} > {t_base} at x{factor}");
        let wall_base = w.replay(&base, &net, None).unwrap().cluster.wall_seconds;
        let wall_fast = w.replay(&fast, &net, None).unwrap().cluster.wall_seconds;
        prop_assert!(
            wall_fast <= wall_base,
            "wall {wall_fast} > {wall_base} at x{factor}"
        );
    }

    /// Repricing is deterministic: serialization is byte-stable across a
    /// round trip, repricing the same workload twice produces identical
    /// segments, and two replays agree bit for bit.
    #[test]
    fn repricing_is_deterministic(
        specs in proptest::collection::vec(
            proptest::collection::vec(arb_segment(), 1usize..6),
            1usize..5,
        ),
        bw_scale in 0.5..4.0,
        flops_scale in 0.5..4.0,
    ) {
        let w = workload_from_specs(specs);
        let text = w.to_jsonl();
        prop_assert_eq!(&w.to_jsonl(), &text);
        let parsed = RecordedWorkload::parse_jsonl(&text).unwrap();
        prop_assert_eq!(&parsed.to_jsonl(), &text);

        let mut node = NodeCalib::default();
        node.cpu.core_flops *= flops_scale;
        node.gpu.fp64_peak *= flops_scale;
        let net = NetCalib {
            bw: NetCalib::default().bw * bw_scale,
            ..NetCalib::default()
        };
        let a = w.reprice(&node, &net);
        let b = parsed.reprice(&node, &net);
        prop_assert_eq!(&a, &b);
        let wall_a = w.replay(&node, &net, None).unwrap().cluster.wall_seconds;
        let wall_b = parsed.replay(&node, &net, None).unwrap().cluster.wall_seconds;
        prop_assert_eq!(wall_a.to_bits(), wall_b.to_bits());
    }
}
