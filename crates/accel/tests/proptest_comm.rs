//! Property-based tests for the collective cost model ([`accel_sim::comm`]).
//!
//! These formulas price every inter-node collective in the simulator —
//! analytically on the legacy path, and as per-rank NIC demand in the
//! cluster engine — so they must be sane over the whole input space, not
//! just the calibrated points: non-negative (including the degenerate
//! single-rank communicator), monotone in message size, and zero-cost for
//! zero-byte messages only up to latency.

use accel_sim::comm::{allreduce_seconds, broadcast_seconds, reduce_scatter_seconds};
use accel_sim::NetCalib;
use proptest::prelude::*;

fn arb_net() -> impl Strategy<Value = NetCalib> {
    // Bandwidths from ~100 Mb/s ethernet to ~400 Gb/s slingshot, latency
    // from sub-microsecond fabric to ~1 ms WAN.
    (1e7..1e11, 1e-7..1e-3).prop_map(|(bw, latency)| NetCalib { bw, latency })
}

fn arb_bytes() -> impl Strategy<Value = f64> {
    0.0..1e12
}

proptest! {
    /// All three collectives cost a non-negative, finite time for any
    /// rank count from 1 up — including the ranks == 1 degenerate case,
    /// which must be exactly free (no self-communication charge).
    #[test]
    fn collectives_are_non_negative(net in arb_net(), ranks in 1u32..=4096, bytes in arb_bytes()) {
        for f in [allreduce_seconds, reduce_scatter_seconds, broadcast_seconds] {
            let t = f(&net, ranks, bytes);
            prop_assert!(t.is_finite() && t >= 0.0, "ranks={ranks} bytes={bytes} -> {t}");
        }
        prop_assert_eq!(allreduce_seconds(&net, 1, bytes), 0.0);
        prop_assert_eq!(reduce_scatter_seconds(&net, 1, bytes), 0.0);
        prop_assert_eq!(broadcast_seconds(&net, 1, bytes), 0.0);
    }

    /// More bytes never communicate faster (monotone non-decreasing in
    /// message size, for every algorithm and rank count).
    #[test]
    fn collectives_are_monotone_in_bytes(
        net in arb_net(),
        ranks in 1u32..=4096,
        a in arb_bytes(),
        b in arb_bytes(),
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for f in [allreduce_seconds, reduce_scatter_seconds, broadcast_seconds] {
            let tl = f(&net, ranks, lo);
            let th = f(&net, ranks, hi);
            prop_assert!(
                tl <= th,
                "ranks={ranks}: {lo} B -> {tl}s but {hi} B -> {th}s"
            );
        }
    }

    /// Zero-byte collectives cost latency only, and that cost still grows
    /// with the communicator (more hops, more latency terms).
    #[test]
    fn zero_bytes_is_pure_latency(net in arb_net(), ranks in 2u32..=4096) {
        let t = allreduce_seconds(&net, ranks, 0.0);
        let expected = 2.0 * (ranks as f64 - 1.0) * net.latency;
        prop_assert!((t - expected).abs() <= 1e-12 * expected.max(1.0));
        prop_assert!(allreduce_seconds(&net, ranks + 1, 0.0) >= t);
    }

    /// An allreduce is a reduce-scatter followed by an allgather of the
    /// same volume: it can never be cheaper than its reduce-scatter half.
    #[test]
    fn allreduce_dominates_reduce_scatter(
        net in arb_net(),
        ranks in 1u32..=4096,
        bytes in arb_bytes(),
    ) {
        prop_assert!(
            allreduce_seconds(&net, ranks, bytes) >= reduce_scatter_seconds(&net, ranks, bytes)
        );
    }
}
