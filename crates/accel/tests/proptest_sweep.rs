//! Property-based tests for the batched sweep ([`accel_sim::sweep`]).
//!
//! The sweep's optimizer claims are structural, so they must hold over
//! arbitrary recorded workloads and grids, not just the calibrated
//! presets: the Pareto front never contains a dominated point (and never
//! misses an undominated one), the analytic lower bound never exceeds the
//! replayed makespan (so deadline pruning never discards a feasible
//! configuration), and the identity grid point always reproduces the
//! trace-level oracle bit for bit.

use accel_sim::sweep::{sweep, sweep_digest, SweepCalib, SweepCheckpoint, SweepSpec};
use accel_sim::whatif::{RecordMeta, RecordedWorkload};
use accel_sim::{KernelProfile, RankTrace, SchedulePolicyKind, Segment, TransferDir};
use proptest::prelude::*;

/// A compact segment spec the shim can sample: kind selector plus two
/// magnitudes, decoded by [`workload_from_specs`].
fn arb_segment() -> impl Strategy<Value = (u8, f64, f64)> {
    (0u8..5, 1e-6..1.0, 1.0..1e10)
}

fn decode_segment((kind, a, b): (u8, f64, f64)) -> Segment {
    match kind {
        0 => Segment::Host {
            seconds: a,
            label: "host".into(),
        },
        1 => Segment::Kernel {
            profile: KernelProfile {
                name: "k".into(),
                items: b,
                flops_per_item: 10.0 * a,
                bytes_per_item: 8.0,
                divergence: 1.0,
            },
            dispatch: a * 1e-3,
        },
        2 => Segment::Transfer {
            bytes: b,
            dir: TransferDir::HostToDevice,
            label: "h2d".into(),
        },
        3 => Segment::DeviceAlloc { seconds: a * 1e-2 },
        _ => Segment::Collective {
            seconds: a,
            bytes: b,
            label: "allreduce".into(),
        },
    }
}

fn workload_from_specs(specs: Vec<Vec<(u8, f64, f64)>>) -> RecordedWorkload {
    let mut ranks: Vec<RankTrace> = specs
        .into_iter()
        .map(|segs| RankTrace {
            segments: segs.into_iter().map(decode_segment).collect(),
            ..RankTrace::default()
        })
        .collect();
    // Barriers follow MPI semantics: every rank that performs
    // collectives must perform the same number of them or the replay
    // deadlocks. Pad short ranks with extra collectives so the
    // generated job is symmetric (raggedness is exercised by the
    // analyzer's adversarial suite, not here).
    let max_collectives = ranks
        .iter()
        .map(|r| {
            r.segments
                .iter()
                .filter(|s| matches!(s, Segment::Collective { .. }))
                .count()
        })
        .max()
        .unwrap_or(0);
    for rank in &mut ranks {
        let have = rank
            .segments
            .iter()
            .filter(|s| matches!(s, Segment::Collective { .. }))
            .count();
        for _ in have..max_collectives {
            rank.segments.push(decode_segment((4, 1e-3, 1e6)));
        }
    }
    RecordedWorkload {
        meta: RecordMeta {
            total_ranks: 8,
            ..RecordMeta::default()
        },
        nodes: vec![ranks],
    }
}

fn arb_workload() -> impl Strategy<Value = RecordedWorkload> {
    proptest::collection::vec(proptest::collection::vec(arb_segment(), 1..8), 1..5)
        .prop_map(workload_from_specs)
}

fn grid(meta: &RecordMeta) -> SweepSpec {
    SweepSpec {
        calibs: vec![
            SweepCalib::resolve("identity", meta).expect("identity"),
            SweepCalib::resolve("h100", meta).expect("preset"),
            SweepCalib::resolve("a100-nvlink", meta).expect("preset"),
        ],
        gpus: vec![1, 2, 4],
        schedules: vec![SchedulePolicyKind::Auto, SchedulePolicyKind::Fifo],
        deadline: None,
    }
}

proptest! {
    #[test]
    fn pareto_front_is_exactly_the_undominated_set(w in arb_workload()) {
        let res = sweep(&w, &grid(&w.meta)).expect("sweep");
        let evaluated: Vec<(usize, f64, f64)> = res
            .points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| Some((i, p.makespan?, p.cost?)))
            .collect();
        for &(i, m, c) in &evaluated {
            let dominated = evaluated
                .iter()
                .any(|&(_, om, oc)| om <= m && oc <= c && (om < m || oc < c));
            prop_assert!(
                res.pareto.contains(&i) != dominated,
                "point {} (makespan {}, cost {}): front membership vs domination",
                i, m, c
            );
        }
    }

    #[test]
    fn lower_bound_never_exceeds_the_replayed_makespan(w in arb_workload()) {
        let res = sweep(&w, &grid(&w.meta)).expect("sweep");
        for p in &res.points {
            if let Some(m) = p.makespan {
                prop_assert!(
                    p.lower_bound <= m * (1.0 + 1e-12),
                    "{} x{} {}: bound {} > makespan {}",
                    p.calib, p.gpus, p.schedule, p.lower_bound, m
                );
            }
        }
    }

    #[test]
    fn identity_grid_point_is_bit_identical_to_the_oracle(w in arb_workload()) {
        let spec = SweepSpec::default_grid(&w.meta);
        let res = sweep(&w, &spec).expect("sweep");
        let id = res
            .points
            .iter()
            .find(|p| p.calib == "identity")
            .expect("identity in default grid");
        let oracle = w.replay_identity().expect("fits").cluster.wall_seconds;
        prop_assert_eq!(id.makespan.expect("evaluates").to_bits(), oracle.to_bits());
    }

    #[test]
    fn checkpoint_cursor_round_trips_any_completed_prefix(
        w in arb_workload(),
        take in 0usize..64,
    ) {
        // Whatever prefix of the grid a killed sweep had completed, the
        // persisted cursor must parse back equal — same points, same
        // digest — and re-serialize byte-identically, or a resumed sweep
        // could silently diverge from the uninterrupted run.
        let spec = grid(&w.meta);
        let res = sweep(&w, &spec).expect("sweep");
        let n = take.min(res.points.len());
        let ck = SweepCheckpoint {
            total: res.points.len(),
            digest: sweep_digest(&w, &spec),
            points: res.points[..n].to_vec(),
        };
        let back = SweepCheckpoint::parse_jsonl(&ck.to_jsonl()).expect("parse");
        prop_assert_eq!(&back, &ck);
        prop_assert_eq!(back.to_jsonl(), ck.to_jsonl());
        for (a, b) in ck.points.iter().zip(&back.points) {
            prop_assert_eq!(a.makespan.map(f64::to_bits), b.makespan.map(f64::to_bits));
            prop_assert_eq!(a.cost.map(f64::to_bits), b.cost.map(f64::to_bits));
            prop_assert_eq!(a.lower_bound.to_bits(), b.lower_bound.to_bits());
        }
    }

    #[test]
    fn pruning_is_sound_for_any_deadline(w in arb_workload(), frac in 0.05..1.5f64) {
        // Whatever the deadline, a pruned point's true makespan misses it.
        let mut spec = grid(&w.meta);
        let free = sweep(&w, &spec).expect("sweep");
        let max_m = free
            .points
            .iter()
            .filter_map(|p| p.makespan)
            .fold(0.0, f64::max);
        prop_assume!(max_m > 0.0);
        let deadline = max_m * frac;
        spec.deadline = Some(deadline);
        let res = sweep(&w, &spec).expect("sweep");
        for (p, truth) in res.points.iter().zip(&free.points) {
            if p.pruned {
                prop_assert!(p.lower_bound > deadline);
                let m = truth.makespan.expect("evaluated in the free run");
                prop_assert!(
                    m > deadline,
                    "{} x{} {}: pruned at deadline {} but makespan {}",
                    p.calib, p.gpus, p.schedule, deadline, m
                );
            }
        }
    }
}
