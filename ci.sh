#!/usr/bin/env bash
# Local CI: formatting, lints, docs, release build, full test suite, and a
# cluster-engine smoke run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== fig5 cluster smoke (--nodes 2)"
cargo run --release -p repro-bench --bin fig5_full_benchmark -- --nodes 2 >/dev/null

echo "CI OK"
