#!/usr/bin/env bash
# Local CI: formatting, lints, docs, release build, full test suite, and a
# cluster-engine smoke run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo deny (licenses, advisories)"
# Supply-chain gate, configured in deny.toml. The tool is not part of the
# minimal toolchain image, so skip (loudly) where it is absent.
if command -v cargo-deny >/dev/null 2>&1; then
  cargo deny check licenses advisories
else
  echo "cargo-deny not installed; skipping (install with: cargo install cargo-deny)"
fi

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== scenario golden round-trip (--dump-scenario)"
# Every golden scenario file must load, re-serialize byte-identically,
# and be accepted by its binary: the scenario spec's fixed-point check.
scenario_bin() {
  case "$1" in
    fig5_4node) echo fig5_full_benchmark ;;
    whatif_record*) echo whatif ;;
    *) echo "$1" ;;
  esac
}
for f in scenarios/*.json; do
  name=$(basename "$f" .json)
  bin=$(scenario_bin "$name")
  cargo run --release -p repro-bench --bin "$bin" -- \
    --scenario "$f" --dump-scenario | diff - "$f" >/dev/null || {
    echo "scenario round-trip failed for $f" >&2
    exit 1
  }
done

echo "== simlint scenario gate (scenarios/*.json)"
# Every golden scenario must pass the static analyzer with zero
# error-severity findings (warnings are allowed but printed). Exit 1
# from the lint binary means an admission-blocking diagnostic.
for f in scenarios/*.json; do
  cargo run --release -p repro-bench --bin lint -- --scenario "$f" || {
    echo "simlint gate failed for $f" >&2
    exit 1
  }
done

echo "== fig5 cluster smoke (scenarios/fig5_4node.json)"
cargo run --release -p repro-bench --bin fig5_full_benchmark -- \
  --scenario scenarios/fig5_4node.json >/dev/null

echo "== engine-throughput bench (smoke mode)"
# Validates the bench harness end to end and the shape of the JSON it
# emits; the numbers themselves are not gated here (machine-dependent).
# Absolute path: the bench binary's cwd is the package dir, not the root.
bench_json="$PWD/target/ci_bench_engine.json"
BENCH_ENGINE_SMOKE=1 BENCH_ENGINE_OUT="$bench_json" \
  cargo bench -q -p repro-bench --bench engine >/dev/null
jq -e '
  .mode == "smoke"
  and (.results | length == 6)
  and (.results | all(.events_per_sec > 0 and .iters > 0))
  and ([.results[].nodes] | unique == [1, 8, 64])
' "$bench_json" >/dev/null || {
  echo "BENCH_engine.json malformed:" >&2
  cat "$bench_json" >&2
  exit 1
}
rm -f "$bench_json"

echo "== sweep-throughput bench (smoke mode)"
# Validates the batched (compile-once) vs naive sweep harness and its
# JSON shape: both paths must report throughput, the batched path must be
# faster, and its identity point must match the oracle bit for bit.
sweep_json="$PWD/target/ci_bench_sweep.json"
BENCH_SWEEP_SMOKE=1 BENCH_SWEEP_OUT="$sweep_json" \
  cargo bench -q -p repro-bench --bench sweep >/dev/null
jq -e '
  .mode == "smoke"
  and .grid_points == 120
  and .identity_bit_identical == true
  and (.results | length == 2)
  and (.results | all(.points_per_sec > 0 and .iters > 0))
  and .speedup_batched_vs_naive > 1
' "$sweep_json" >/dev/null || {
  echo "BENCH_sweep.json malformed:" >&2
  cat "$sweep_json" >&2
  exit 1
}
rm -f "$sweep_json"

echo "== whatif record->replay differential smoke"
# The identity replay must reproduce the recorded makespan bit for bit
# (the repricer's differential oracle); an H100-like preset must complete
# from the recorded charges alone.
workload="target/ci_whatif_workload.jsonl"
cargo run --release -p repro-bench --bin whatif -- \
  --scenario scenarios/whatif_record.json --record "$workload" >/dev/null
cargo run --release -p repro-bench --bin whatif -- --replay "$workload" \
  | grep "identity check: .* delta 0.000000000" >/dev/null
cargo run --release -p repro-bench --bin whatif -- --replay "$workload" --calib h100 \
  | grep "^makespan: " >/dev/null

echo "== record->lint smoke"
# A fresh recording straight off the runner must pass the workload-level
# analyzer cleanly (exit 0): the record path may not produce traces the
# admission gate would reject.
cargo run --release -p repro-bench --bin lint -- --recording "$workload"

echo "== whatif sweep smoke"
# The batched Pareto search over the same recording: a small grid with a
# loose deadline must evaluate points, extract a front and name a winner.
sweep_out=$(cargo run --release -p repro-bench --bin whatif -- sweep \
  --record "$workload" --gpus 2..4 --calib identity,h100 --deadline 1.0)
echo "$sweep_out" | grep -E "^sweep: 6 point\(s\), " >/dev/null
echo "$sweep_out" | grep -E "^pareto front: [1-9][0-9]* point\(s\)" >/dev/null
echo "$sweep_out" | grep "^best under deadline " >/dev/null

echo "== sweep --preflight bit-identity"
# The statically-gated sweep must serialize byte-identically to the
# unpruned sweep over the same grid (the analyzer predicts the exact
# errors replays would produce).
cargo run --release -p repro-bench --bin whatif -- sweep \
  --record "$workload" --gpus 1..4 --calib identity,h100 \
  --out target/ci_sweep_full.jsonl >/dev/null
cargo run --release -p repro-bench --bin whatif -- sweep \
  --record "$workload" --gpus 1..4 --calib identity,h100 --preflight \
  --out target/ci_sweep_preflight.jsonl | grep " rejected by preflight" >/dev/null
diff target/ci_sweep_full.jsonl target/ci_sweep_preflight.jsonl || {
  echo "preflight sweep output diverged from the unpruned sweep" >&2
  exit 1
}
rm -f target/ci_sweep_full.jsonl target/ci_sweep_preflight.jsonl

echo "== simd serve smoke (example job stream, admission accept/reject)"
# The worked example under scenarios/ must run end to end: every job
# admitted and completed. A mangled scenario (procs that do not divide
# the cores) must be rejected at admission with the typed reason, and a
# rejection must not take the service down.
simd=target/release/simd
serve_out=$("$simd" < scenarios/serve_jobs.ndjson)
[ "$(echo "$serve_out" | grep -c '"state":"done"')" = 2 ] || {
  echo "serve_jobs.ndjson did not complete both jobs:" >&2
  echo "$serve_out" >&2
  exit 1
}
reject_out=$( {
  jq -c '{type:"submit", id:"ci-reject", scenario:(.procs_per_node=7 | .output={})}' \
    scenarios/whatif_record.json
  echo '{"type":"stats"}'
} | "$simd")
echo "$reject_out" | grep '"id":"ci-reject","state":"rejected","reason":"invalid"' >/dev/null
echo "$reject_out" | grep '"rejected_invalid":1' >/dev/null

echo "== simd checkpoint kill/resume differential"
# A sweep SIGKILLed at a checkpoint boundary and resumed must produce
# output byte-identical to the uninterrupted run.
ckdir="target/ci_simd_ckpt"
rm -rf "$ckdir" target/ci_simd_a.jsonl target/ci_simd_b.jsonl
mkdir -p "$ckdir"
sweep_req() {
  printf '{"type":"sweep","id":"ci-sweep","recording":"%s","grid":"gpus=1..6;calib=identity,a100,h100","out":"%s"}\n' \
    "$workload" "$1"
}
sweep_req target/ci_simd_a.jsonl | "$simd" >/dev/null
mkfifo "$ckdir/in"
SIMD_SERVE_CHUNK_SLEEP_MS=2000 "$simd" --checkpoint-dir "$ckdir" --checkpoint-every 4 \
  < "$ckdir/in" > "$ckdir/log" &
simd_pid=$!
exec 9>"$ckdir/in"
sweep_req target/ci_simd_b.jsonl >&9
echo '{"type":"drain"}' >&9
for _ in $(seq 1 100); do
  grep -q '"state":"checkpoint"' "$ckdir/log" 2>/dev/null && break
  sleep 0.1
done
kill -9 "$simd_pid" 2>/dev/null || true
wait "$simd_pid" 2>/dev/null || true
exec 9>&-
[ -f "$ckdir/ci-sweep.ckpt.jsonl" ] || {
  echo "killed simd left no checkpoint cursor" >&2
  exit 1
}
sweep_req target/ci_simd_b.jsonl \
  | "$simd" --checkpoint-dir "$ckdir" --checkpoint-every 4 --resume \
  | grep -E '"state":"running".*"resumed":[1-9]' >/dev/null || {
  echo "resumed simd did not adopt the cursor" >&2
  exit 1
}
diff target/ci_simd_a.jsonl target/ci_simd_b.jsonl || {
  echo "resumed sweep output diverged from the uninterrupted run" >&2
  exit 1
}
rm -rf "$ckdir" target/ci_simd_a.jsonl target/ci_simd_b.jsonl
rm -f "$workload"

echo "CI OK"
