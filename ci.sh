#!/usr/bin/env bash
# Local CI: formatting, lints, docs, release build, full test suite, and a
# cluster-engine smoke run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== fig5 cluster smoke (--nodes 2)"
cargo run --release -p repro-bench --bin fig5_full_benchmark -- --nodes 2 >/dev/null

echo "== whatif record->replay differential smoke"
# The identity replay must reproduce the recorded makespan bit for bit
# (the repricer's differential oracle); an H100-like preset must complete
# from the recorded charges alone.
workload="target/ci_whatif_workload.jsonl"
cargo run --release -p repro-bench --bin whatif -- \
  --record "$workload" --size medium --impl omp --procs 8 --nodes 2 >/dev/null
cargo run --release -p repro-bench --bin whatif -- --replay "$workload" \
  | grep "identity check: .* delta 0.000000000" >/dev/null
cargo run --release -p repro-bench --bin whatif -- --replay "$workload" --calib h100 \
  | grep "^makespan: " >/dev/null
rm -f "$workload"

echo "CI OK"
