//! Integration tests for the simulator-level behaviours the paper reports:
//! oversubscription, MPS, out-of-memory patterns, and the XLA-CPU penalty.
//! These exercise the full stack (workload generator → pipelines → node
//! replay) at reduced size but unchanged structure.

use repro_bench::{run_config, RunConfig, RunOutcome};
use scenario::{ImplKind, ProblemSize, Scenario};

/// The full medium problem at small scale — expensive, so tests that need
/// the real memory proportions share it. Expressed as a [`Scenario`] and
/// projected through [`RunConfig::from_scenario`], the same path every
/// scenario file takes.
fn medium(kind: ImplKind, procs: u32) -> Scenario {
    let mut s = Scenario::new("simulator behaviour", ProblemSize::Medium, 1e-3)
        .with_kind(kind)
        .with_procs(procs);
    // Trim compute while keeping the memory ratios: per-observation
    // footprints (which drive the OOM pattern) depend on n_obs, so trim
    // the solver passes instead — they only repeat kernels over resident
    // data.
    s.problem.passes = Some(1);
    s
}

fn run_scenario(s: &Scenario) -> RunOutcome {
    run_config(&RunConfig::from_scenario(s).expect("valid scenario")).expect("valid config")
}

fn run(kind: ImplKind, procs: u32) -> RunOutcome {
    run_scenario(&medium(kind, procs))
}

#[test]
fn jit_oversubscription_peaks_at_two_processes_per_gpu() {
    let t = |procs| run(ImplKind::Jit, procs).runtime().unwrap_or(f64::INFINITY);
    let (t4, t8) = (t(4), t(8));
    assert!(
        t8 < t4,
        "two processes per GPU must beat one (paper Fig. 4): t4 {t4} t8 {t8}"
    );
}

#[test]
fn jit_runs_out_of_memory_at_one_process_but_offload_fits() {
    let jit = run(ImplKind::Jit, 1);
    assert!(
        jit.runtime().is_none(),
        "the paper's JAX run does not fit one process on a 40 GB device"
    );
    let omp = run(ImplKind::OmpTarget, 1);
    assert!(
        omp.runtime().is_some(),
        "the paper's offload run fits at one process"
    );
}

#[test]
fn both_device_ports_run_out_of_memory_at_64_processes() {
    for kind in [ImplKind::Jit, ImplKind::OmpTarget] {
        let out = run(kind, 64);
        assert!(
            out.runtime().is_none(),
            "{kind:?} at 64 procs should exceed device memory (16 contexts per GPU)"
        );
    }
    // The CPU baseline is unaffected (Fig. 4 plots it at 64).
    let cpu = run(ImplKind::Cpu, 64);
    assert!(cpu.runtime().is_some());
}

#[test]
fn disabling_mps_erases_the_oversubscription_benefit() {
    let base = medium(ImplKind::OmpTarget, 16);
    let t_on = run_scenario(&base.clone().with_mps(true))
        .runtime()
        .unwrap();
    let t_off = run_scenario(&base.with_mps(false)).runtime().unwrap();
    assert!(
        t_off > 1.05 * t_on,
        "without MPS the driver context-switches: on {t_on} off {t_off}"
    );
}

#[test]
fn the_cpu_curve_falls_with_process_count() {
    let t = |procs| run(ImplKind::Cpu, procs).runtime().unwrap();
    let (t1, t16) = (t(1), t(16));
    assert!(
        t16 < 0.5 * t1,
        "serial per-process work must be parallelised by ranks: t1 {t1} t16 {t16}"
    );
}

#[test]
fn the_jit_cpu_backend_is_much_slower_than_the_parallel_baseline() {
    let cpu = run(ImplKind::Cpu, 16).runtime().unwrap();
    let jit_cpu = run(ImplKind::JitCpu, 16).runtime().unwrap();
    let ratio = jit_cpu / cpu;
    assert!(
        ratio > 3.0,
        "XLA-CPU-style backend should be several times slower (paper: 7.4x): {ratio}"
    );
}
