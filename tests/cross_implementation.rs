//! Workspace-level integration tests: the three kernel implementations
//! must agree on realistic satellite workloads, end to end.
//!
//! This is the repository's core correctness claim (the paper's ports had
//! to preserve the science): every kernel's offload and JIT
//! implementations reproduce the CPU baseline on generated data with
//! varied intervals, real noise and a structured sky.

use repro_bench::RunConfig;
use scenario::{ImplKind, MovementPolicy, ProblemSize, Scenario};
use toast_repro::accel_sim::Context;
use toast_repro::toast_core::kernels::ExecCtx;
use toast_repro::toast_core::pipeline::benchmark_pipeline;
use toast_repro::toast_core::workspace::Workspace;
use toast_repro::toast_satsim::Problem;

/// Ranks per node for these tests: the suite inspects one rank's
/// workspace, so it keeps the rank count small and independent of the
/// scenario's thread partitioning.
const RANKS: u32 = 2;

/// The trimmed medium problem as a [`Scenario`]: 32 detectors over two
/// observations, samples scaled to match. Overrides live in the scenario
/// (the same `problem.*` fields a scenario file would carry), not in
/// hand-mutated [`Problem`] structs.
fn scenario(kind: ImplKind) -> Scenario {
    let base = Problem::medium(1e-3);
    let mut s = Scenario::new("cross implementation", ProblemSize::Medium, 1e-3)
        .with_kind(kind)
        .with_procs(8);
    s.problem.n_det_total = Some(32);
    s.problem.total_samples = Some(base.total_samples * 32.0 / 2048.0);
    s.problem.n_obs = Some(2);
    s
}

fn run_with(s: &Scenario) -> (Workspace, Context) {
    // Project through the runner's configuration — the same path every
    // scenario file takes — then drive the pipeline at workspace level
    // so individual rank outputs stay inspectable.
    let cfg = RunConfig::from_scenario(s).expect("valid scenario");
    let p = &cfg.problem;
    let mut ws = p.rank_workspace(0, RANKS);
    let mut ctx = Context::new(cfg.node_calib());
    let mut exec = ExecCtx::new(cfg.kind, cfg.threads().expect("divides"));
    let host = p.host_seconds_per_rank(&ws, RANKS);
    let pipe = benchmark_pipeline(host).with_policy(cfg.movement);
    for _ in 0..p.n_obs {
        pipe.run(&mut ctx, &mut exec, &mut ws).expect("fits");
    }
    (ws, ctx)
}

fn run(kind: ImplKind) -> (Workspace, Context) {
    run_with(&scenario(kind))
}

fn assert_close(label: &str, a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len(), "{label} length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * x.abs().max(1.0),
            "{label}[{i}]: {x} vs {y}"
        );
    }
}

#[test]
fn offload_port_reproduces_the_cpu_baseline() {
    let (cpu, _) = run(ImplKind::Cpu);
    let (omp, ctx) = run(ImplKind::OmpTarget);
    assert_close("signal", &cpu.obs.signal, &omp.obs.signal, 1e-10);
    assert_close("zmap", &cpu.zmap, &omp.zmap, 1e-9);
    assert_close("amp_out", &cpu.amp_out, &omp.amp_out, 1e-9);
    // Pixels are intermediate products: the pipeline (like TOAST) leaves
    // them on the device, so the host copy is not compared here — the
    // kernel-level tests in toast-core check them bit-exactly.
    // The offload run actually used the device.
    assert!(ctx.trace().kernel_count() > 0);
    assert!(ctx.trace().transfer_bytes() > 0.0);
}

#[test]
fn jit_port_reproduces_the_cpu_baseline() {
    let (cpu, _) = run(ImplKind::Cpu);
    let (jit, ctx) = run(ImplKind::Jit);
    assert_close("signal", &cpu.obs.signal, &jit.obs.signal, 1e-10);
    assert_close("zmap", &cpu.zmap, &jit.zmap, 1e-9);
    assert_close("amp_out", &cpu.amp_out, &jit.amp_out, 1e-9);
    assert!(ctx.trace().kernel_count() > 0);
}

#[test]
fn jit_cpu_backend_matches_jit_device_backend_exactly() {
    let (dev, _) = run(ImplKind::Jit);
    let (cpu_backend, ctx) = run(ImplKind::JitCpu);
    // Same compiled programs, same interpreter: bitwise identical.
    assert_eq!(dev.obs.signal, cpu_backend.obs.signal);
    assert_eq!(dev.zmap, cpu_backend.zmap);
    // But no device was used.
    assert_eq!(ctx.trace().kernel_count(), 0);
    assert_eq!(ctx.trace().transfer_bytes(), 0.0);
}

#[test]
fn device_time_is_far_below_cpu_time_for_the_kernels() {
    // The point of the whole exercise: the same kernels cost much less
    // simulated time on the accelerator.
    let (_, cpu_ctx) = run(ImplKind::Cpu);
    let (_, omp_ctx) = run(ImplKind::OmpTarget);
    let kernel = "stokes_weights_IQU";
    let cpu_t = cpu_ctx.stats()[kernel].seconds;
    let omp_t = omp_ctx.stats()[kernel].seconds;
    assert!(
        cpu_t / omp_t > 5.0,
        "expected a large device speedup for {kernel}: cpu {cpu_t} omp {omp_t}"
    );
}

#[test]
fn naive_movement_is_slower_but_equally_correct() {
    let run_policy = |policy| {
        let mut s = scenario(ImplKind::OmpTarget).with_movement(policy);
        s.problem.n_obs = Some(1);
        let cfg = RunConfig::from_scenario(&s).expect("valid scenario");
        let mut ws = cfg.problem.rank_workspace(0, RANKS);
        let mut ctx = Context::new(cfg.node_calib());
        let mut exec = ExecCtx::new(cfg.kind, cfg.threads().expect("divides"));
        let pipe = benchmark_pipeline(0.01).with_policy(cfg.movement);
        pipe.run(&mut ctx, &mut exec, &mut ws).expect("fits");
        (ws, ctx)
    };
    let (tracked_ws, tracked_ctx) = run_policy(MovementPolicy::Tracked);
    let (naive_ws, naive_ctx) = run_policy(MovementPolicy::Naive);
    assert_close(
        "signal",
        &tracked_ws.obs.signal,
        &naive_ws.obs.signal,
        1e-12,
    );
    assert!(naive_ctx.trace().transfer_bytes() > tracked_ctx.trace().transfer_bytes());
}
